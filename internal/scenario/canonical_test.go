package scenario

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/mission"
)

// TestCanonicalDeterministic: the canonical form is byte-identical across
// calls and across label-only differences, and every registered scenario has
// one (the registry stays cacheable end to end).
func TestCanonicalDeterministic(t *testing.T) {
	for _, s := range All() {
		a, err := s.Canonical()
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		b, err := s.Canonical()
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s: canonical form not deterministic", s.Name)
		}
		renamed := s
		renamed.Name, renamed.Description = "other-label", "other description"
		c, err := renamed.Canonical()
		if err != nil {
			t.Fatalf("%s renamed: %v", s.Name, err)
		}
		if !bytes.Equal(a, c) {
			t.Errorf("%s: canonical form depends on the label", s.Name)
		}
	}
}

// TestCanonicalResolvesDefaults: a Spec that spells a default explicitly
// denotes the same mission as one leaving the knob unset, so the two must
// fingerprint identically — otherwise equivalent jobs would miss the result
// cache.
func TestCanonicalResolvesDefaults(t *testing.T) {
	base := MustGet("surveillance-city")
	want, err := base.Fingerprint(1)
	if err != nil {
		t.Fatal(err)
	}
	for name, explicit := range map[string]func(*Spec){
		"initial-battery": func(s *Spec) { s.InitialBattery = 1 },
		"drain-multiple":  func(s *Spec) { s.DrainMultiple = 1 },
		"protection":      func(s *Spec) { s.Protection = mission.ProtectRTA },
		"ac":              func(s *Spec) { s.AC = mission.ACAggressive },
		"learned-bad":     func(s *Spec) { s.LearnedBadFraction = 0.12 },
		"motion-delta":    func(s *Spec) { s.MotionDelta = 100 * time.Millisecond },
		"hysteresis":      func(s *Spec) { s.Hysteresis = 2.0 },
		"switch-policy":   func(s *Spec) { s.SwitchPolicy = "soter-fig9" },
		"plan-margin":     func(s *Spec) { s.PlanMargin = 1.25 },
	} {
		got, err := base.With(Override{Apply: explicit}).Fingerprint(1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got != want {
			t.Errorf("explicit default %s changed the fingerprint", name)
		}
	}
}

// TestFingerprintSensitivity: the fingerprint separates what must be
// separated (different scenarios, seeds, overridden knobs) and identifies
// what must be identified (the same (Spec, seed) pair).
func TestFingerprintSensitivity(t *testing.T) {
	base := MustGet("surveillance-city")
	fp := func(s Spec, seed int64) string {
		t.Helper()
		h, err := s.Fingerprint(seed)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	same, again := fp(base, 1), fp(base, 1)
	if same != again {
		t.Fatalf("fingerprint not stable: %s vs %s", same, again)
	}
	seen := map[string]string{"base/seed-1": same}
	distinct := map[string]string{
		"seed-2":    fp(base, 2),
		"duration":  fp(base.With(Override{Apply: func(s *Spec) { s.Duration = 42 * time.Second }}), 1),
		"jitter":    fp(base.With(Override{Apply: func(s *Spec) { s.JitterProb = 0.01 }}), 1),
		"invariant": fp(base.With(Override{Apply: func(s *Spec) { s.InvariantMonitor = true }}), 1),
		"policy":    fp(base.With(Override{Apply: func(s *Spec) { s.SwitchPolicy = "sticky-sc" }}), 1),
		"canyon":    fp(MustGet("canyon-corridor"), 1),
	}
	for name, h := range distinct {
		for prev, ph := range seen {
			if h == ph {
				t.Errorf("fingerprint collision: %s == %s (%s)", name, prev, h)
			}
		}
		seen[name] = h
	}
}
