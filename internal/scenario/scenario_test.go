package scenario

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/sim"
)

// short returns the registered spec scaled down to a quick smoke mission.
func short(t *testing.T, name string, d time.Duration) Spec {
	t.Helper()
	spec, ok := Get(name)
	if !ok {
		t.Fatalf("scenario %q not registered", name)
	}
	spec.Duration = d
	return spec
}

// TestCatalog checks the registry invariants the CLIs rely on: at least six
// scenarios, every one of them valid.
func TestCatalog(t *testing.T) {
	names := Names()
	if len(names) < 6 {
		t.Fatalf("registered scenarios = %d (%v), want >= 6", len(names), names)
	}
	for _, spec := range All() {
		if err := spec.Validate(); err != nil {
			t.Errorf("registered scenario %q does not validate: %v", spec.Name, err)
		}
		if spec.Description == "" {
			t.Errorf("registered scenario %q has no description", spec.Name)
		}
	}
}

// TestCatalogBuildsAndRuns is the registry smoke test: every registered
// scenario validates, builds, and completes a short mission without error.
func TestCatalogBuildsAndRuns(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec := short(t, name, 5*time.Second)
			rcfg, err := spec.Build(11)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			out, err := sim.Run(rcfg)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if out.Metrics.Duration <= 0 {
				t.Error("mission simulated no time")
			}
		})
	}
}

// TestCatalogDeterminism: the same (Spec, seed) pair must always denote the
// same mission — identical Metrics run to run.
func TestCatalogDeterminism(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec := short(t, name, 4*time.Second)
			var runs [2]sim.Metrics
			for i := range runs {
				rcfg, err := spec.Build(29)
				if err != nil {
					t.Fatalf("Build: %v", err)
				}
				out, err := sim.Run(rcfg)
				if err != nil {
					t.Fatalf("Run: %v", err)
				}
				runs[i] = out.Metrics
			}
			if !reflect.DeepEqual(runs[0], runs[1]) {
				t.Errorf("metrics differ across identical runs:\n  first:  %+v\n  second: %+v", runs[0], runs[1])
			}
		})
	}
}

func TestValidateRejects(t *testing.T) {
	valid := Spec{
		Name:     "valid",
		Targets:  []geom.Vec3{geom.V(3, 3, 2)},
		Duration: time.Second,
	}
	if err := valid.Validate(); err != nil {
		t.Fatalf("baseline spec invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"empty name", func(s *Spec) { s.Name = "" }},
		{"no duration", func(s *Spec) { s.Duration = 0 }},
		{"no targets", func(s *Spec) { s.Targets = nil }},
		{"targets and random", func(s *Spec) { s.RandomTargets = true }},
		{"battery > 1", func(s *Spec) { s.InitialBattery = 1.5 }},
		{"negative drain", func(s *Spec) { s.DrainMultiple = -1 }},
		{"jitter > 1", func(s *Spec) { s.JitterProb = 2 }},
		{"bug rate > 1", func(s *Spec) { s.PlannerBugRate = 1.5 }},
		{"negative fault start", func(s *Spec) { s.Faults = FaultProfile{First: -time.Second, Len: time.Second} }},
		{"unknown policy", func(s *Spec) { s.SwitchPolicy = "no-such-policy" }},
		{"bad policy param", func(s *Spec) { s.SwitchPolicy = "sticky-sc:0" }},
		{"one-way with non-default policy", func(s *Spec) { s.OneWaySwitching, s.SwitchPolicy = true, "always-ac" }},
	}
	for _, tc := range cases {
		spec := valid
		tc.mutate(&spec)
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the broken spec", tc.name)
		}
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	spec := Spec{
		Name:     "register-dup-probe",
		Targets:  []geom.Vec3{geom.V(3, 3, 2)},
		Duration: time.Second,
	}
	// Keep the probe out of the process-global registry once this test is
	// done, so the catalog tests stay order-independent and -count=N works.
	t.Cleanup(func() {
		registry.Lock()
		delete(registry.specs, spec.Name)
		registry.Unlock()
	})
	if err := Register(spec); err != nil {
		t.Fatalf("first Register: %v", err)
	}
	if err := Register(spec); err == nil {
		t.Error("duplicate Register succeeded")
	}
	if err := Register(Spec{Name: "invalid-probe"}); err == nil {
		t.Error("Register accepted an invalid spec")
	}
}

func TestOverride(t *testing.T) {
	base := MustGet("surveillance-city")
	ov := base.With(Override{Name: "no-faults", Apply: func(s *Spec) {
		s.Faults = FaultProfile{}
		s.Targets[0] = geom.V(9, 9, 9)
	}})
	if ov.Name != "surveillance-city+no-faults" {
		t.Errorf("override name = %q", ov.Name)
	}
	if ov.Faults.Active() {
		t.Error("override did not clear the fault profile")
	}
	if base.Targets[0] == geom.V(9, 9, 9) {
		t.Error("With leaked target mutation into the base spec")
	}
	if !MustGet("surveillance-city").Faults.Active() {
		t.Error("registry spec mutated by override")
	}
}

// TestFaultProfileWindows pins the expansion semantics the experiment
// rewrites depend on.
func TestFaultProfileWindows(t *testing.T) {
	p := FaultProfile{First: 9 * time.Second, Every: 13 * time.Second, Len: 1200 * time.Millisecond, Dir: geom.V(1, 0, 0)}
	ws := p.windows(1, 45*time.Second)
	if len(ws) != 3 {
		t.Fatalf("windows = %d, want 3 (9s, 22s, 35s)", len(ws))
	}
	if ws[1].Start != 22*time.Second || ws[1].End != 22*time.Second+1200*time.Millisecond {
		t.Errorf("second window = [%v, %v]", ws[1].Start, ws[1].End)
	}

	single := FaultProfile{First: 60 * time.Second, Spread: 45 * time.Second, Len: time.Second, MaxWindows: 1}
	w := single.windows(13, 5*time.Minute)
	if len(w) != 1 {
		t.Fatalf("single-window profile expanded to %d windows", len(w))
	}
	if want := (60 + 13%45) * time.Second; w[0].Start != want {
		t.Errorf("spread window start = %v, want %v", w[0].Start, want)
	}
	if got := single.windows(-13, 5*time.Minute); got[0].Start < 60*time.Second {
		t.Errorf("negative seed produced start %v before First", got[0].Start)
	}

	if (FaultProfile{}).windows(1, time.Minute) != nil {
		t.Error("inactive profile produced windows")
	}
	capped := FaultProfile{First: 0, Every: time.Second, Len: 100 * time.Millisecond, MaxWindows: 6}
	if got := capped.windows(1, time.Minute); len(got) != 6 {
		t.Errorf("MaxWindows ignored: %d windows", len(got))
	}
}
