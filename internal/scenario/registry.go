package scenario

import (
	"fmt"
	"maps"
	"slices"
	"sync"
)

// registry is the package-level named-scenario table. Guarded by a mutex so
// tests and applications can register concurrently with fleet workers
// resolving names.
var registry = struct {
	sync.RWMutex
	specs map[string]Spec
}{specs: make(map[string]Spec)}

// Register validates the Spec and adds it to the registry. Registering a
// second Spec under an existing name is an error.
func Register(s Spec) error {
	if err := s.Validate(); err != nil {
		return err
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.specs[s.Name]; dup {
		return fmt.Errorf("scenario %q already registered", s.Name)
	}
	registry.specs[s.Name] = s
	return nil
}

// MustRegister is Register, panicking on error — for package-init catalogs.
func MustRegister(s Spec) {
	if err := Register(s); err != nil {
		panic(err)
	}
}

// Get returns the named Spec. The Targets slice is copied, so callers can
// tweak the returned Spec freely without corrupting the registry.
func Get(name string) (Spec, bool) {
	registry.RLock()
	defer registry.RUnlock()
	s, ok := registry.specs[name]
	s.Targets = slices.Clone(s.Targets)
	return s, ok
}

// MustGet is Get, panicking on a missing name — for experiment code whose
// base scenarios are registered by this package's own catalog.
func MustGet(name string) Spec {
	s, ok := Get(name)
	if !ok {
		panic(fmt.Sprintf("scenario %q not registered", name))
	}
	return s
}

// Names returns the registered scenario names, sorted.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	return slices.Sorted(maps.Keys(registry.specs))
}

// All returns the registered Specs, sorted by name.
func All() []Spec {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]Spec, 0, len(registry.specs))
	for _, name := range slices.Sorted(maps.Keys(registry.specs)) {
		s := registry.specs[name]
		s.Targets = slices.Clone(s.Targets)
		out = append(out, s)
	}
	return out
}
