package scenario

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/geom"
	"repro/internal/mission"
	"repro/internal/plan"
	"repro/internal/rta"
)

// canonicalExcluded lists the Spec fields deliberately absent from the
// canonical form: pure labels, carrying no influence on the compiled
// mission, so two Specs differing only here must share cache entries. The
// canonicalfield analyzer (internal/lint/canonicalfield) requires every Spec
// field to be either referenced by the canonicalization below or listed
// here; TestCanonicalHandlesEverySpecField asserts the same at run time.
var canonicalExcluded = [...]string{"Name", "Description"}

// canonicalSpec is the serialization schema of Canonical: every field of a
// Spec that influences the compiled mission, in a fixed order, with the
// workspace factory resolved to its concrete geometry and every defaulted
// field resolved to its effective value. Name and Description are excluded
// deliberately — two Specs that differ only in labelling denote the same
// mission, and the result cache should treat them as one.
type canonicalSpec struct {
	WorkspaceBounds    geom.AABB              `json:"workspace_bounds"`
	WorkspaceObstacles []geom.AABB            `json:"workspace_obstacles"`
	Targets            []geom.Vec3            `json:"targets,omitempty"`
	RandomTargets      bool                   `json:"random_targets,omitempty"`
	Start              geom.Vec3              `json:"start"`
	InitialBattery     float64                `json:"initial_battery"`
	DrainMultiple      float64                `json:"drain_multiple"`
	Protection         mission.ProtectionMode `json:"protection"`
	AC                 mission.ACKind         `json:"ac"`
	LearnedBadFraction float64                `json:"learned_bad_fraction"`
	NoPlannerModule    bool                   `json:"no_planner_module,omitempty"`
	NoBatteryModule    bool                   `json:"no_battery_module,omitempty"`
	OneWaySwitching    bool                   `json:"one_way_switching,omitempty"`
	MotionDeltaNS      time.Duration          `json:"motion_delta_ns"`
	Hysteresis         float64                `json:"hysteresis"`
	SwitchPolicy       string                 `json:"switch_policy"`
	PlanMargin         float64                `json:"plan_margin"`
	Faults             FaultProfile           `json:"faults"`
	PlannerBug         plan.Bug               `json:"planner_bug"`
	PlannerBugRate     float64                `json:"planner_bug_rate"`
	JitterProb         float64                `json:"jitter_prob"`
	JitterSCOnly       bool                   `json:"jitter_sc_only,omitempty"`
	DurationNS         time.Duration          `json:"duration_ns"`
	InvariantMonitor   bool                   `json:"invariant_monitor,omitempty"`
}

// Canonical returns a deterministic serialization of the mission the Spec
// denotes: the same workload always yields byte-identical output, regardless
// of how the Spec was assembled (registry lookup, overrides, hand-written
// literal). It validates first, resolves the workspace factory and the
// defaulted start position, and serializes the remaining declarative fields
// in a fixed schema — which makes it a sound cache key for anything derived
// deterministically from (Spec, seed), the property the serving layer's
// result cache is built on.
func (s Spec) Canonical() ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	ws := s.workspace()
	// Every "zero means default" knob is resolved to the effective value the
	// Build path would use (Spec.StackConfig, mission.DefaultStackConfig and
	// mission.Build's clamping), so a Spec spelling a default explicitly
	// fingerprints identically to one leaving it unset —
	// TestCanonicalResolvesDefaults holds the two paths together.
	c := canonicalSpec{
		WorkspaceBounds:    ws.Bounds(),
		WorkspaceObstacles: ws.ObstaclesView(),
		Targets:            s.Targets,
		RandomTargets:      s.RandomTargets,
		Start:              s.start(),
		InitialBattery:     defaultIfZero(s.InitialBattery, 1),
		DrainMultiple:      defaultIfZero(s.DrainMultiple, 1),
		Protection:         s.Protection,
		AC:                 s.AC,
		LearnedBadFraction: defaultIfZero(s.LearnedBadFraction, 0.12),
		NoPlannerModule:    s.NoPlannerModule,
		NoBatteryModule:    s.NoBatteryModule,
		OneWaySwitching:    s.OneWaySwitching,
		MotionDeltaNS:      s.MotionDelta,
		Hysteresis:         s.Hysteresis,
		PlanMargin:         s.PlanMargin,
		Faults:             s.Faults,
		PlannerBug:         s.PlannerBug,
		PlannerBugRate:     s.PlannerBugRate,
		JitterProb:         s.JitterProb,
		JitterSCOnly:       s.JitterSCOnly,
		DurationNS:         s.Duration,
		InvariantMonitor:   s.InvariantMonitor,
	}
	if c.Protection == 0 {
		c.Protection = mission.ProtectRTA
	}
	if c.AC == 0 {
		c.AC = mission.ACAggressive
	}
	if c.MotionDeltaNS <= 0 {
		c.MotionDeltaNS = 100 * time.Millisecond
	}
	if c.Hysteresis < 1 {
		c.Hysteresis = 2.0 // mission.Build clamps sub-1 values to the default
	}
	if c.PlanMargin <= 0 {
		c.PlanMargin = 0.45 + 0.8 // default margin + planner slack
	}
	// The policy spec is normalized so every spelling of the same switching
	// behaviour — "", "soter-fig9", "sticky-sc" vs "sticky-sc:10" — shares
	// one cache entry, while genuinely different policies never collide.
	pol, err := rta.CanonicalPolicySpec(s.SwitchPolicy)
	if err != nil {
		return nil, fmt.Errorf("scenario %q: canonicalize: %w", s.Name, err)
	}
	c.SwitchPolicy = pol
	out, err := json.Marshal(c)
	if err != nil {
		return nil, fmt.Errorf("scenario %q: canonicalize: %w", s.Name, err)
	}
	return out, nil
}

// defaultIfZero resolves a "zero means default" float knob.
func defaultIfZero(v, def float64) float64 {
	if v == 0 {
		return def
	}
	return v
}

// Fingerprint hashes the canonical form of (Spec, seed) into a short stable
// hex string. Runs are fully deterministic per (Spec, seed) — the property
// the paper's repeatable experiments rely on — so the fingerprint identifies
// a mission's results: equal fingerprints mean byte-identical metrics, which
// is what lets the serving layer answer repeated grid cells from cache
// instead of re-simulating them.
func (s Spec) Fingerprint(seed int64) (string, error) {
	canon, err := s.Canonical()
	if err != nil {
		return "", err
	}
	return fingerprintOf(canon, seed), nil
}

// Fingerprints is the seed-sweep form of Fingerprint: one canonicalization,
// one hash per seed — what a serving-layer job with thousands of grid cells
// calls instead of re-canonicalizing the identical spec per cell.
func (s Spec) Fingerprints(seeds []int64) ([]string, error) {
	canon, err := s.Canonical()
	if err != nil {
		return nil, err
	}
	out := make([]string, len(seeds))
	for i, seed := range seeds {
		out[i] = fingerprintOf(canon, seed)
	}
	return out, nil
}

// fingerprintOf hashes canonical spec bytes together with the seed.
func fingerprintOf(canon []byte, seed int64) string {
	h := sha256.New()
	h.Write(canon)
	var sb [8]byte
	binary.BigEndian.PutUint64(sb[:], uint64(seed))
	h.Write(sb[:])
	return hex.EncodeToString(h.Sum(nil)[:16])
}
