package scenario

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/rta"
	"repro/internal/sim"
)

// TestCanonicalHandlesEverySpecField is the cache-poisoning guard: every
// field of Spec must be explicitly accounted for by Canonical() — either
// included in the canonical schema or deliberately excluded below. A knob
// added to Spec without a decision here fails this test, instead of silently
// aliasing cache entries for missions that differ in the new knob (the
// soter-serve result cache would then serve one mission's verdict for the
// other).
func TestCanonicalHandlesEverySpecField(t *testing.T) {
	// included: the field influences the compiled mission and is serialized
	// (directly or in resolved form — Workspace becomes bounds+obstacles,
	// Start is defaulted, SwitchPolicy is canonicalized).
	// excluded: the field is labelling only; two Specs differing only there
	// denote the same mission and must share cache entries.
	// The excluded set is declared once, in canonical.go, where the
	// canonicalfield analyzer checks it at build time; this test consumes it
	// so the two guards can never disagree.
	handled := map[string]string{
		"Workspace":          "included",
		"Targets":            "included",
		"RandomTargets":      "included",
		"Start":              "included",
		"InitialBattery":     "included",
		"DrainMultiple":      "included",
		"Protection":         "included",
		"AC":                 "included",
		"LearnedBadFraction": "included",
		"NoPlannerModule":    "included",
		"NoBatteryModule":    "included",
		"OneWaySwitching":    "included",
		"MotionDelta":        "included",
		"Hysteresis":         "included",
		"SwitchPolicy":       "included",
		"PlanMargin":         "included",
		"Faults":             "included",
		"PlannerBug":         "included",
		"PlannerBugRate":     "included",
		"JitterProb":         "included",
		"JitterSCOnly":       "included",
		"Duration":           "included",
		"InvariantMonitor":   "included",
	}
	for _, name := range canonicalExcluded {
		handled[name] = "excluded"
	}
	excluded := 0
	for _, decision := range handled {
		if decision == "excluded" {
			excluded++
		}
	}
	typ := reflect.TypeOf(Spec{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		if _, ok := handled[name]; !ok {
			t.Errorf("Spec field %q is not handled by Canonical(): include it in the canonical schema or deliberately exclude it (and record the decision in TestCanonicalHandlesEverySpecField)", name)
		}
		delete(handled, name)
	}
	for name := range handled {
		t.Errorf("TestCanonicalHandlesEverySpecField lists %q but Spec has no such field — stale entry", name)
	}
	// Cross-check the "included" count against the canonical schema so a
	// field can't be marked included while the schema forgot it: every Spec
	// knob maps to at least one canonicalSpec field (Workspace maps to two).
	if specFields, canonFields := typ.NumField()-excluded, reflect.TypeOf(canonicalSpec{}).NumField(); canonFields < specFields {
		t.Errorf("canonicalSpec has %d fields for %d included Spec knobs — a knob is missing from the schema", canonFields, specFields)
	}
}

// TestFingerprintDistinguishesPolicy: two specs differing only in
// SwitchPolicy produce distinct fingerprints — policies never share cache
// entries — while every spelling of the same policy shares one.
func TestFingerprintDistinguishesPolicy(t *testing.T) {
	base := MustGet("surveillance-city")
	fp := func(policy string) string {
		t.Helper()
		s := base
		s.SwitchPolicy = policy
		h, err := s.Fingerprint(1)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	if fp("") != fp("soter-fig9") {
		t.Error("\"\" and \"soter-fig9\" denote the same policy but fingerprint differently")
	}
	if fp("sticky-sc") != fp("sticky-sc:10") {
		t.Error("\"sticky-sc\" and its explicit default parameter fingerprint differently")
	}
	distinct := []string{"", "sticky-sc", "sticky-sc:25", "hysteresis", "always-ac", "always-sc"}
	seen := map[string]string{}
	for _, pol := range distinct {
		h := fp(pol)
		if prev, dup := seen[h]; dup {
			t.Errorf("fingerprint collision between policies %q and %q", pol, prev)
		}
		seen[h] = pol
	}
	if _, err := (Spec{Name: "x", Targets: base.Targets, Duration: time.Second, SwitchPolicy: "no-such"}).Fingerprint(1); err == nil {
		t.Error("unknown policy canonicalized without error")
	}
}

// recordRun builds the spec at the seed and replays it, returning the
// marshalled event stream (trajectory samples excluded to keep the
// comparison about decisions, not floats — though those are deterministic
// too) and the metrics.
func recordRun(t *testing.T, s Spec, seed int64) ([]byte, sim.Metrics) {
	t.Helper()
	rcfg, err := s.Build(seed)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := obs.NewJSONLWriter(&buf)
	rcfg.Observers = append(rcfg.Observers, w)
	res, err := sim.Run(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), res.Metrics
}

// TestDefaultPolicyGolden: a spec with SwitchPolicy unset and one naming
// soter-fig9 explicitly produce byte-identical event streams and metrics on
// a fixed scenario+seed — the acceptance golden pinning the redesign to the
// seed behaviour — while a spec differing only in policy produces a
// different stream.
func TestDefaultPolicyGolden(t *testing.T) {
	base := MustGet("surveillance-city")
	base.Duration = 15 * time.Second

	unset, unsetMetrics := recordRun(t, base, 3)

	explicit := base
	explicit.SwitchPolicy = "soter-fig9"
	named, namedMetrics := recordRun(t, explicit, 3)

	if !bytes.Equal(unset, named) {
		t.Fatal("explicit soter-fig9 event stream diverges from the default")
	}
	if !reflect.DeepEqual(unsetMetrics, namedMetrics) {
		t.Fatalf("explicit soter-fig9 metrics diverge: %+v vs %+v", unsetMetrics, namedMetrics)
	}
	if s := unsetMetrics.Modules["safe-motion-primitive"]; s.Disengagements == 0 {
		t.Fatal("golden run never switched; the comparison is vacuous")
	}

	sticky := base
	sticky.SwitchPolicy = "sticky-sc:40" // 4s dwell at Δ=100ms: visibly different switching
	stickyStream, stickyMetrics := recordRun(t, sticky, 3)
	if bytes.Equal(unset, stickyStream) {
		t.Error("sticky-sc:40 produced the identical event stream — the policy knob is not wired through Build")
	}
	if reflect.DeepEqual(unsetMetrics.Modules, stickyMetrics.Modules) {
		t.Error("sticky-sc:40 produced identical module stats — the policy knob is not wired through Build")
	}
}

// TestPolicyClampKeepsAlwaysACSafe: the adversarial always-ac policy on the
// default mission stays crash-free — safety is enforced by the module clamp,
// not by policy good behaviour — and the run records the clamp firing.
func TestPolicyClampKeepsAlwaysACSafe(t *testing.T) {
	s := MustGet("surveillance-city")
	s.Duration = 15 * time.Second
	s.SwitchPolicy = "always-ac"
	_, m := recordRun(t, s, 3)
	if m.Crashed {
		t.Fatalf("always-ac crashed at t=%v — the framework clamp failed", m.CrashTime)
	}
	stats := m.Modules["safe-motion-primitive"]
	if stats.Disengagements == 0 {
		t.Fatal("always-ac never disengaged; the clamp was never exercised")
	}
	if stats.Clamped != stats.Disengagements {
		t.Errorf("always-ac disengaged %d times but only %d were clamps — it cannot disengage voluntarily", stats.Disengagements, stats.Clamped)
	}
}

// TestSwitchReasonsInStream: the default policy's switches carry ttf-trip /
// recovery reasons end to end through the sim event stream.
func TestSwitchReasonsInStream(t *testing.T) {
	s := MustGet("surveillance-city")
	s.Duration = 15 * time.Second
	rcfg, err := s.Build(3)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder(0)
	rcfg.Observers = append(rcfg.Observers, rec)
	if _, err := sim.Run(rcfg); err != nil {
		t.Fatal(err)
	}
	saw := map[rta.SwitchReason]bool{}
	for _, e := range rec.Events() {
		if sw, ok := e.(obs.ModeSwitch); ok {
			saw[sw.Reason] = true
		}
	}
	if !saw[rta.ReasonTTFTrip] || !saw[rta.ReasonRecovery] {
		t.Errorf("expected both ttf-trip and recovery reasons in the stream, saw %v", saw)
	}
	if saw[rta.ReasonNone] {
		t.Error("a mode switch carried no reason")
	}
}
