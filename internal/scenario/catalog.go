package scenario

import (
	"time"

	"repro/internal/geom"
	"repro/internal/plan"
)

// CornerTour returns the g1..g4 waypoint square of the corner-hazard
// workspace (Figure 5 right / Figure 12a). Exported because the unprotected
// Figure 5 experiment drives a bare controller around the same tour.
func CornerTour() []geom.Vec3 {
	return []geom.Vec3{
		geom.V(5, 5, 2), geom.V(25, 5, 2), geom.V(25, 25, 2), geom.V(5, 25, 2),
	}
}

// The built-in catalog. Each entry is the paper's workload or a stress
// variant of it; experiments and CLIs resolve these by name and express
// their configurations as overrides of them.
func init() {
	MustRegister(Spec{
		Name: "surveillance-city",
		Description: "The paper's case study: RTA-protected patrol of the city workspace " +
			"with periodic full-thrust AC faults (Figure 12b).",
		Targets: []geom.Vec3{
			geom.V(3, 3, 2), geom.V(46, 3, 2.5), geom.V(46, 46, 2),
			geom.V(3, 46, 2.5), geom.V(25, 33, 3),
		},
		Faults: FaultProfile{
			First: 9 * time.Second,
			Every: 13 * time.Second,
			Len:   1200 * time.Millisecond,
			Dir:   geom.V(1, 0.4, 0),
		},
		Duration: 2 * time.Minute,
	})

	MustRegister(Spec{
		Name: "canyon-corridor",
		Description: "Shuttle between two staging areas through a 5 m canyon; the tight " +
			"φsafer band in the passage stresses the switching logic.",
		Workspace: geom.CanyonWorkspace,
		Targets:   []geom.Vec3{geom.V(5, 15, 2), geom.V(55, 15, 2)},
		// Plan close to the walls: the default margin+0.8 slack would route
		// around the canyon entirely (or fail), defeating the scenario.
		PlanMargin: 0.55,
		Faults: FaultProfile{
			First: 10 * time.Second,
			Every: 15 * time.Second,
			Len:   time.Second,
			Dir:   geom.V(0, 1, 0), // push toward the canyon wall
		},
		Duration: 2 * time.Minute,
	})

	MustRegister(Spec{
		Name: "random-endurance",
		Description: "Section V-D style endurance segment: randomly drawn surveillance " +
			"targets with one sporadic AC failure per segment.",
		RandomTargets: true,
		Faults: FaultProfile{
			First:      60 * time.Second,
			Spread:     45 * time.Second,
			Len:        1100 * time.Millisecond,
			Dir:        geom.V(1, 0.5, 0),
			MaxWindows: 1,
		},
		Duration: 5 * time.Minute,
	})

	MustRegister(Spec{
		Name: "battery-stress",
		Description: "Figure 12c: 30x battery drain from 92% charge; the battery DM must " +
			"abort the mission and land with charge to spare.",
		Targets: []geom.Vec3{
			geom.V(3, 3, 2), geom.V(46, 3, 2), geom.V(46, 46, 2), geom.V(3, 46, 2),
		},
		InitialBattery: 0.92,
		DrainMultiple:  30,
		Duration:       10 * time.Minute,
	})

	MustRegister(Spec{
		Name: "planner-bug-gauntlet",
		Description: "Section V-C: the RRT* AC planner skips edge checks on 30% of draws " +
			"while plans hug obstacles; the planner RTA must keep φplan.",
		RandomTargets:  true,
		PlannerBug:     plan.BugSkipEdgeCheck,
		PlannerBugRate: 0.3,
		// Plan at the tight safety margin so defective plans actually reach
		// the DM instead of being masked by planner slack.
		PlanMargin: 0.5,
		Duration:   time.Minute,
	})

	MustRegister(Spec{
		Name: "jitter-storm",
		Description: "Best-effort scheduling stress: frequent SC/DM outage bursts on top " +
			"of periodic AC faults (the Section V-D crash mode, amplified).",
		RandomTargets: true,
		Faults: FaultProfile{
			First: 15 * time.Second,
			Every: 20 * time.Second,
			Len:   1200 * time.Millisecond,
			Dir:   geom.V(1, 0.3, 0),
		},
		JitterProb:   0.02,
		JitterSCOnly: true,
		Duration:     3 * time.Minute,
	})

	MustRegister(Spec{
		Name: "corner-hazard-tour",
		Description: "Figure 12a: the g1..g4 tour with hazard blocks past every corner; " +
			"motion layer only, waypoints deliberately near the hazards.",
		Workspace:       geom.CornerHazardWorkspace,
		Targets:         CornerTour(),
		Start:           geom.V(5, 25, 2),
		NoPlannerModule: true,
		NoBatteryModule: true,
		PlanMargin:      0.5,
		Duration:        10 * time.Minute,
	})
}
