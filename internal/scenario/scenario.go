// Package scenario is the declarative workload layer of the reproduction.
// The paper evaluates SOTER on a single case study — the drone surveillance
// mission of Section V — and the seed codebase hardwired that one workload
// across the mission, sim and experiment layers, every caller hand-assembling
// its own mission.StackConfig → sim.RunConfig plumbing. A Spec instead
// describes *what* a mission is — workspace layout, target generator, initial
// state, protection mode, AC kind, fault/planner-bug/jitter profile, battery
// model, Δ/hysteresis knobs — and Build compiles it into a ready
// sim.RunConfig. The package-level registry names the workloads so CLIs,
// experiment sweeps and the fleet grid builder (fleet.ScenarioGrid) can run
// any of them by name; registering a new workload is a ~30-line Spec instead
// of a new package.
package scenario

import (
	"fmt"
	"slices"
	"time"

	"repro/internal/controller"
	"repro/internal/geom"
	"repro/internal/mission"
	"repro/internal/plan"
	"repro/internal/plant"
	"repro/internal/rta"
	"repro/internal/sim"
)

// FaultProfile declaratively injects periodic full-thrust fault windows into
// the untrusted advanced controller. The zero value injects nothing; a
// profile is active when Len is positive.
type FaultProfile struct {
	// First is the start of the first fault window.
	First time.Duration
	// Every spaces subsequent windows; zero or negative injects only the
	// First window.
	Every time.Duration
	// Len is the duration of each window; zero disables the profile.
	Len time.Duration
	// Dir is the thrust direction of the fault (controller.FaultFullThrust).
	Dir geom.Vec3
	// Spread offsets First by (seed mod Spread) whole seconds, decorrelating
	// fault times across a seed sweep (the Section V-D "sporadic failure").
	Spread time.Duration
	// MaxWindows caps the number of windows; zero means as many as fit
	// before the mission deadline.
	MaxWindows int
}

// Active reports whether the profile injects any faults.
func (p FaultProfile) Active() bool { return p.Len > 0 }

// windows expands the profile into concrete fault-injection windows for a
// mission of the given duration and seed.
func (p FaultProfile) windows(seed int64, duration time.Duration) []controller.Fault {
	if !p.Active() {
		return nil
	}
	first := p.First
	if sec := int64(p.Spread / time.Second); sec > 0 {
		off := seed % sec
		if off < 0 {
			off += sec
		}
		first += time.Duration(off) * time.Second
	}
	var out []controller.Fault
	for i := 0; ; i++ {
		start := first + time.Duration(i)*p.Every
		if start >= duration {
			break
		}
		out = append(out, controller.Fault{
			Kind:  controller.FaultFullThrust,
			Start: start,
			End:   start + p.Len,
			Param: p.Dir,
		})
		if p.Every <= 0 || (p.MaxWindows > 0 && len(out) >= p.MaxWindows) {
			break
		}
	}
	return out
}

// Spec is a declarative, self-contained description of one workload. The
// zero value of every field means "the paper's default": Build compiles a
// Spec by starting from mission.DefaultStackConfig and overriding only what
// the Spec sets, so a minimal Spec is just a name, a target set and a
// duration.
type Spec struct {
	// Name uniquely identifies the scenario in the registry.
	Name string
	// Description is the one-line catalog entry.
	Description string

	// Workspace lays out the obstacle map; nil defaults to the paper's city
	// workspace (geom.CityWorkspace).
	Workspace func() *geom.Workspace

	// Targets is the fixed surveillance tour; RandomTargets instead draws
	// each next target uniformly from free space (Section V-D style).
	// Exactly one of the two must be set.
	Targets       []geom.Vec3
	RandomTargets bool

	// Start is the initial position; the zero vector defaults to the first
	// target (or the city start pad when targets are random).
	Start geom.Vec3
	// InitialBattery is the initial charge fraction; zero defaults to full.
	InitialBattery float64
	// DrainMultiple scales both battery drain rates; zero defaults to 1.
	DrainMultiple float64

	// Protection selects RTA / AC-only / SC-only for the motion layer
	// (zero = ProtectRTA); AC selects the untrusted motion primitive
	// (zero = ACAggressive) and LearnedBadFraction its corruption level.
	Protection         mission.ProtectionMode
	AC                 mission.ACKind
	LearnedBadFraction float64
	// NoPlannerModule / NoBatteryModule drop the respective RTA layers;
	// OneWaySwitching disables the SC→AC return (classic Simplex).
	NoPlannerModule bool
	NoBatteryModule bool
	OneWaySwitching bool

	// MotionDelta and Hysteresis are the Δ / φsafer-horizon knobs of the
	// motion-primitive module (Remark 3.3); zero keeps the defaults.
	MotionDelta time.Duration
	Hysteresis  float64
	// SwitchPolicy names the motion-primitive module's switching policy in
	// the rta policy registry ("soter-fig9", "sticky-sc:25", "hysteresis:5",
	// "always-ac", "always-sc"); empty selects the paper's Figure 9 rules.
	// Safety is policy-independent (the module clamps unsafe AC proposals to
	// SC), so the policy is a pure performance/conservatism axis — the
	// sweepable ablation dimension of the Section V comparisons.
	SwitchPolicy string
	// PlanMargin is the clearance planners aim for; zero defaults to the
	// safety margin + 0.8. Scenarios whose routes intentionally hug
	// obstacles (narrow passages, corner hazards) set it lower.
	PlanMargin float64

	// Faults injects periodic full-thrust windows into the AC.
	Faults FaultProfile
	// PlannerBug injects the selected defect into the RRT* AC planner at
	// PlannerBugRate (Section V-C).
	PlannerBug     plan.Bug
	PlannerBugRate float64
	// JitterProb enables best-effort-scheduling outages (Section V-D);
	// JitterSCOnly restricts them to SC/DM nodes, the paper's failure mode.
	JitterProb   float64
	JitterSCOnly bool

	// Duration is the default mission length; must be positive.
	Duration time.Duration
	// InvariantMonitor enables the runtime φInv monitor
	// (sim.RunConfig.CheckInvariants): violations are asserted at every DM
	// sampling instant and counted in the metrics. Off by default — the
	// monitor evaluates the module predicates on every DM step, so it is a
	// cost knob workloads opt into.
	InvariantMonitor bool
}

// defaultStart is the city workspace take-off pad used whenever a Spec does
// not pin the initial position.
var defaultStart = geom.V(3, 3, 2)

// Validate checks that the Spec is internally consistent. It is cheap — no
// stack is assembled — so registries and grid builders can validate whole
// catalogs eagerly.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: empty name")
	}
	if s.Duration <= 0 {
		return fmt.Errorf("scenario %q: duration %v must be positive", s.Name, s.Duration)
	}
	if len(s.Targets) == 0 && !s.RandomTargets {
		return fmt.Errorf("scenario %q: no targets and RandomTargets not set", s.Name)
	}
	if len(s.Targets) > 0 && s.RandomTargets {
		return fmt.Errorf("scenario %q: fixed Targets and RandomTargets are mutually exclusive", s.Name)
	}
	if s.InitialBattery < 0 || s.InitialBattery > 1 {
		return fmt.Errorf("scenario %q: initial battery %v outside [0, 1]", s.Name, s.InitialBattery)
	}
	if s.DrainMultiple < 0 {
		return fmt.Errorf("scenario %q: drain multiple %v must be non-negative", s.Name, s.DrainMultiple)
	}
	if s.JitterProb < 0 || s.JitterProb > 1 {
		return fmt.Errorf("scenario %q: jitter probability %v outside [0, 1]", s.Name, s.JitterProb)
	}
	if s.PlannerBugRate < 0 || s.PlannerBugRate > 1 {
		return fmt.Errorf("scenario %q: planner bug rate %v outside [0, 1]", s.Name, s.PlannerBugRate)
	}
	if s.Faults.Active() && s.Faults.First < 0 {
		return fmt.Errorf("scenario %q: fault profile First %v must be non-negative", s.Name, s.Faults.First)
	}
	if s.SwitchPolicy != "" {
		pol, err := rta.ParsePolicy(s.SwitchPolicy)
		if err != nil {
			return fmt.Errorf("scenario %q: %w", s.Name, err)
		}
		// One-way switching ablates the Figure 9 return path specifically;
		// its latch gates φsafer, which a custom policy may never consult
		// (always-ac would re-engage straight past it). Reject the
		// combination here so jobs fail at submit, not mid-fleet.
		if s.OneWaySwitching && pol.Name() != rta.DefaultPolicyName {
			return fmt.Errorf("scenario %q: OneWaySwitching is defined for the default %s policy only, not %q",
				s.Name, rta.DefaultPolicyName, s.SwitchPolicy)
		}
	}
	return nil
}

// workspace resolves the Spec's workspace factory.
func (s Spec) workspace() *geom.Workspace {
	if s.Workspace != nil {
		return s.Workspace()
	}
	return geom.CityWorkspace()
}

// StartPos resolves the Spec's effective initial position — Spec.Start, the
// first fixed target, or the default take-off pad. Exported for engines that
// build their own environment around a compiled stack (the falsification
// layer's schedule strategy drives the explore backend directly).
func (s Spec) StartPos() geom.Vec3 { return s.start() }

// start resolves the initial position.
func (s Spec) start() geom.Vec3 {
	if s.Start != (geom.Vec3{}) {
		return s.Start
	}
	if len(s.Targets) > 0 {
		return s.Targets[0]
	}
	return defaultStart
}

// StackConfig compiles the Spec into the mission-stack configuration it
// denotes, without building the stack. Build is the one-call path; this is
// exposed for callers that want to tweak the stack further.
func (s Spec) StackConfig(seed int64) (mission.StackConfig, error) {
	if err := s.Validate(); err != nil {
		return mission.StackConfig{}, err
	}
	ws := s.workspace()
	params := plant.DefaultParams()
	if s.DrainMultiple > 0 {
		params.IdleDrainPerSec *= s.DrainMultiple
		params.AccelDrainPerSec *= s.DrainMultiple
	}
	cfg := mission.DefaultStackConfig(seed)
	cfg.Workspace = ws
	cfg.PlantParams = params
	cfg.WithPlannerModule = !s.NoPlannerModule
	cfg.WithBatteryModule = !s.NoBatteryModule
	cfg.OneWaySwitching = s.OneWaySwitching
	cfg.SwitchPolicy = s.SwitchPolicy
	cfg.PlannerBug = s.PlannerBug
	cfg.PlannerBugRate = s.PlannerBugRate
	if s.Protection != 0 {
		cfg.Protection = s.Protection
	}
	if s.AC != 0 {
		cfg.AC = s.AC
	}
	if s.LearnedBadFraction > 0 {
		cfg.LearnedBadFraction = s.LearnedBadFraction
	}
	if s.MotionDelta > 0 {
		cfg.MotionDelta = s.MotionDelta
	}
	if s.Hysteresis > 0 {
		cfg.Hysteresis = s.Hysteresis
	}
	if s.PlanMargin > 0 {
		cfg.PlanMargin = s.PlanMargin
	}
	if s.RandomTargets {
		cfg.App = mission.AppConfig{Random: true}
	} else {
		cfg.App = mission.AppConfig{Points: slices.Clone(s.Targets)}
	}
	cfg.ACFaults = s.Faults.windows(seed, s.Duration)
	return cfg, nil
}

// Build compiles the Spec into a ready closed-loop run configuration: it
// validates, assembles the mission stack and fills in the initial state and
// run knobs. Every stochastic component is seeded from the single seed, so
// the same (Spec, seed) pair always denotes the same mission.
func (s Spec) Build(seed int64) (sim.RunConfig, error) {
	return s.BuildWith(seed, nil)
}

// BuildWith compiles like Build but hands the compiled StackConfig to tweak
// before the stack is assembled. It is the seam between the declarative spec
// layer and callers that need a sampled variation of a spec — the
// certification layer thins the fault-window schedule here for its sporadic
// fault model and importance-sampled runs. A nil tweak is exactly Build.
// Tweaked runs are NOT covered by the spec's canonical fingerprint; callers
// own any caching of their variations.
func (s Spec) BuildWith(seed int64, tweak func(*mission.StackConfig)) (sim.RunConfig, error) {
	cfg, err := s.StackConfig(seed)
	if err != nil {
		return sim.RunConfig{}, err
	}
	if tweak != nil {
		tweak(&cfg)
	}
	st, err := mission.Build(cfg)
	if err != nil {
		return sim.RunConfig{}, fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	battery := s.InitialBattery
	if battery == 0 {
		battery = 1
	}
	return sim.RunConfig{
		Stack:           st,
		Initial:         plant.State{Pos: s.start(), Battery: battery},
		Duration:        s.Duration,
		Seed:            seed,
		JitterProb:      s.JitterProb,
		JitterSCOnly:    s.JitterSCOnly,
		CheckInvariants: s.InvariantMonitor,
	}, nil
}

// Override is a named transformation of a Spec — the unit of the cartesian
// sweeps built by fleet.ScenarioGrid and of the experiment rewrites, which
// declare each configuration as a base scenario plus an override.
type Override struct {
	// Name labels the override in mission names ("spec+override/seed-N").
	// Empty leaves the Spec's name untouched.
	Name string
	// Apply mutates the Spec copy; nil is the identity.
	Apply func(*Spec)
}

// With returns a deep-enough copy of the Spec with the override applied and
// the override's name folded into the Spec name. The receiver is not
// modified.
func (s Spec) With(ov Override) Spec {
	out := s
	out.Targets = slices.Clone(s.Targets)
	if ov.Apply != nil {
		ov.Apply(&out)
	}
	if ov.Name != "" {
		out.Name = s.Name + "+" + ov.Name
	}
	return out
}
