// Package soter is a Go reproduction of SOTER, the runtime assurance (RTA)
// framework for programming safe robotics systems (Desai et al., DSN 2019).
//
// A SOTER program is a collection of periodic nodes communicating by
// publishing on and subscribing to topics (Section II-B of the paper). Any
// uncertified component — a third-party motion primitive, a learned
// controller, an off-the-shelf planner — is protected by declaring an RTA
// module: an advanced controller (AC), a certified safe controller (SC), a
// period Δ and the safety predicates. The framework compiles the declaration
// into a decision module (DM) that samples the monitored state every Δ and
// switches control AC→SC when the worst-case 2Δ-reachable set can leave the
// safe region (keeping the system provably inside φsafe, Theorem 3.1), and
// SC→AC when the state is back in the stronger region φsafer (restoring
// performance — the paper's extension over classic Simplex). Output-disjoint
// modules compose, and the composite system satisfies the conjunction of the
// module invariants (Theorem 4.1).
//
// Construction mirrors the paper's surface syntax (Figures 4 and 7).
// Execution is context-aware and observable: Run honours cancellation, and
// any number of Observers can consume the run's typed event stream — mode
// switches, node firings, invariant violations, time progress — through
// WithObservers (one stream, many composable consumers):
//
//	mp, _ := soter.NewNode("MotionPrimitive", 10*time.Millisecond,
//	    []soter.TopicName{"localPosition", "targetWaypoint"},
//	    []soter.TopicName{"controlAction"}, acStep)
//	mpSC, _ := soter.NewNode("MotionPrimitiveSC", 10*time.Millisecond,
//	    []soter.TopicName{"localPosition", "targetWaypoint"},
//	    []soter.TopicName{"controlAction"}, scStep)
//	mod, _ := soter.NewRTAModule(soter.ModuleDecl{
//	    Name: "SafeMotionPrimitive",
//	    AC:   mp, SC: mpSC,
//	    Delta:     100 * time.Millisecond,
//	    TTF2Delta: ttf2dMPr,   // Reach(st, *, 2Δ) ⊄ φsafe
//	    InSafer:   phiSaferMPr, // st ∈ φsafer
//	    Safe:      phiSafeMPr,
//	})
//	sys, _ := soter.NewSystem([]*soter.Module{mod}, nil)
//
//	rec := soter.NewRecorder(0) // bounded in-memory event tail
//	exec, _ := soter.NewExecutor(sys, nil,
//	    soter.WithInvariantChecking(),
//	    soter.WithObservers(rec, soter.ObserverFunc(func(e soter.Event) {
//	        if sw, ok := e.(soter.ModeSwitchEvent); ok {
//	            log.Printf("t=%v %s: %v -> %v", sw.T, sw.Module, sw.From, sw.To)
//	        }
//	    })))
//
//	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
//	defer cancel()
//	_ = exec.Run(ctx, time.Minute) // cancellation-aware; RunUntil(d) = Run(context.Background(), d)
//
// The internal packages supply everything the paper's evaluation needs: the
// drone plant, reachability analyses standing in for FaSTrack / the
// Level-Set Toolbox, the RRT* and A* planners, the battery monitor, the
// closed-loop simulator and the bounded-asynchrony systematic-testing
// engine. Above them sits the serving layer: named scenarios, the parallel
// fleet engine, and the soter-serve HTTP service with its deterministic
// result cache (re-exported below as the Service* and Job* vocabulary). See
// docs/ARCHITECTURE.md for the layer map and README.md for quickstarts.
package soter

import (
	"context"
	"io"
	"time"

	"repro/internal/certify"
	"repro/internal/falsify"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/pubsub"
	"repro/internal/rta"
	"repro/internal/runtime"
	"repro/internal/service"
	"repro/internal/store"
)

// Core vocabulary, re-exported from the internal implementation packages so
// applications program against a single import.
type (
	// TopicName names a publish-subscribe topic.
	TopicName = pubsub.TopicName
	// Value is a topic value.
	Value = pubsub.Value
	// Valuation maps topic names to values.
	Valuation = pubsub.Valuation
	// Topic declares a topic with a default value.
	Topic = pubsub.Topic
	// Store is the global topic store an Environment reads and writes.
	Store = pubsub.Store
	// State is a node's local state.
	State = node.State
	// StepFunc is a node transition function.
	StepFunc = node.StepFunc
	// Node is a periodic input-output state-transition system.
	Node = node.Node
	// NodeOption configures node construction.
	NodeOption = node.Option
	// Mode is a decision module's mode (AC or SC).
	Mode = rta.Mode
	// ModuleDecl declares an RTA module (Figure 7).
	ModuleDecl = rta.Decl
	// Module is a compiled RTA module with its generated decision module.
	Module = rta.Module
	// StatePredicate evaluates a predicate over monitored topics.
	StatePredicate = rta.StatePredicate
	// Policy is a pluggable DM switching policy ("policy proposes, module
	// disposes": unsafe AC proposals are clamped to SC by the framework).
	Policy = rta.Policy
	// PolicyState is a policy's private per-module state.
	PolicyState = rta.PolicyState
	// PolicyFactory builds a policy from the parameter of a "name:K" spec.
	PolicyFactory = rta.PolicyFactory
	// DecisionContext is what a policy observes at a DM sampling instant.
	DecisionContext = rta.DecisionContext
	// DMState is a decision module's local state (mode + policy state).
	DMState = rta.DMState
	// SwitchReason explains a DM decision (ttf-trip, recovery, clamped, ...).
	SwitchReason = rta.SwitchReason
	// Certificate discharges the semantic obligations (P2a), (P2b), (P3).
	Certificate = rta.Certificate
	// System is a composition of RTA modules and plain nodes.
	System = rta.System
	// Executor runs a system under the Figure 11 operational semantics.
	Executor = runtime.Executor
	// ExecutorOption configures an executor.
	ExecutorOption = runtime.Option
	// Environment is the environment-input hook.
	Environment = runtime.Environment
	// EnvironmentFunc adapts a function to Environment.
	EnvironmentFunc = runtime.EnvironmentFunc
	// Switch records a DM mode change.
	Switch = runtime.Switch
	// InvariantViolationError reports a φInv monitor failure.
	InvariantViolationError = runtime.InvariantViolationError
)

// Observability vocabulary: one typed event stream, many composable
// consumers (see the internal/obs package).
type (
	// Event is the typed union of everything observable during a run.
	Event = obs.Event
	// EventKind identifies an event variant; KindSet is a mask of kinds an
	// Observer may narrow its subscription to (see Interested).
	EventKind = obs.Kind
	// KindSet is a bitmask of event kinds.
	KindSet = obs.KindSet
	// Observer consumes a run's event stream.
	Observer = obs.Observer
	// ObserverFunc adapts a function to Observer.
	ObserverFunc = obs.ObserverFunc
	// Interested lets an Observer narrow the kinds it receives.
	Interested = obs.Interested
	// Multi fans one event stream out to many observers.
	Multi = obs.Multi
	// Recorder is the bounded in-memory event sink.
	Recorder = obs.Recorder
	// JSONLWriter streams events as JSON Lines.
	JSONLWriter = obs.JSONLWriter

	// The concrete event types (aliased so public Observers can type-switch
	// without importing internal packages).

	// RunStartEvent opens a run's stream.
	RunStartEvent = obs.RunStart
	// RunEndEvent closes a run's stream with the final state.
	RunEndEvent = obs.RunEnd
	// NodeFiredEvent reports one discrete node firing (or a dropped one).
	NodeFiredEvent = obs.NodeFired
	// ModeSwitchEvent reports a DM mode change.
	ModeSwitchEvent = obs.ModeSwitch
	// InvariantViolationEvent reports a φInv monitor failure.
	InvariantViolationEvent = obs.InvariantViolation
	// TimeProgressEvent reports a discrete time progress.
	TimeProgressEvent = obs.TimeProgress
	// TrajectorySampleEvent is one physics sub-step of the trajectory.
	TrajectorySampleEvent = obs.TrajectorySample
	// BatterySampleEvent is a periodic battery reading.
	BatterySampleEvent = obs.BatterySample
	// CrashEvent reports the entry into a collision episode.
	CrashEvent = obs.Crash
	// LandedEvent reports an intentional touchdown.
	LandedEvent = obs.Landed
	// CampaignProgressEvent reports a falsification campaign's progress.
	CampaignProgressEvent = obs.CampaignProgress
	// CounterexampleFoundEvent reports one distinct falsification find.
	CounterexampleFoundEvent = obs.CounterexampleFound
	// CertifyProgressEvent reports a certification campaign's per-batch state.
	CertifyProgressEvent = obs.CertifyProgress
)

// Event kinds, for KindSet subscriptions.
const (
	KindRunStart           = obs.KindRunStart
	KindRunEnd             = obs.KindRunEnd
	KindNodeFired          = obs.KindNodeFired
	KindModeSwitch         = obs.KindModeSwitch
	KindInvariantViolation = obs.KindInvariantViolation
	KindTimeProgress       = obs.KindTimeProgress
	KindTrajectorySample   = obs.KindTrajectorySample
	KindBatterySample      = obs.KindBatterySample
	KindCrash              = obs.KindCrash
	KindLanded             = obs.KindLanded
	KindCampaignProgress   = obs.KindCampaignProgress
	KindCounterexample     = obs.KindCounterexample
	KindCertifyProgress    = obs.KindCertifyProgress
)

// Kinds builds a KindSet from the listed kinds; AllKinds selects every kind.
func Kinds(ks ...EventKind) KindSet { return obs.Kinds(ks...) }

// AllKinds selects every event kind.
const AllKinds = obs.AllKinds

// NewRecorder builds a bounded in-memory event recorder (capacity ≤ 0 uses
// the default bound).
func NewRecorder(capacity int) *Recorder { return obs.NewRecorder(capacity) }

// NewJSONLWriter builds an event sink streaming JSON Lines to w.
func NewJSONLWriter(w io.Writer) *JSONLWriter { return obs.NewJSONLWriter(w) }

// MarshalEvent encodes an event as one JSON object with a "kind"
// discriminator; UnmarshalEvent decodes it back; ReadJSONL replays a whole
// recorded stream.
func MarshalEvent(e Event) ([]byte, error) { return obs.MarshalEvent(e) }

// UnmarshalEvent decodes one MarshalEvent line into its concrete event.
func UnmarshalEvent(line []byte) (Event, error) { return obs.UnmarshalEvent(line) }

// ReadJSONL decodes a recorded JSONL stream back into events.
func ReadJSONL(r io.Reader) ([]Event, error) { return obs.ReadJSONL(r) }

// Simulation-as-a-service vocabulary, re-exported from internal/service: the
// layer cmd/soter-serve runs, for applications that want to embed the job
// server (submit batch jobs against the scenario registry, stream obs events,
// share the tiered result store) instead of shelling out to HTTP.
type (
	// ServiceConfig sizes a job server (incl. StoreDir/StoreMaxBytes/Peers,
	// the result store's durable and distributed tiers).
	ServiceConfig = service.Config
	// ServiceServer accepts, schedules, stores and reports batch jobs.
	ServiceServer = service.Server
	// ServiceStats is the /stats payload (store counters, job tallies).
	ServiceStats = service.Stats
	// Job is one submitted batch with its live state.
	Job = service.Job
	// JobSpec is a batch simulation request (scenario, overrides, seeds).
	JobSpec = service.JobSpec
	// JobStatus is a job's lifecycle state.
	JobStatus = service.Status
	// JobOverrides is the declarative override set of a JobSpec.
	JobOverrides = service.Overrides
)

// Result-store vocabulary, re-exported from internal/store: the durable,
// sharded, deduplicated result store behind the serving layer. Every mission
// is deterministic per (spec, seed), so its verdict is a content-addressed
// artifact keyed by Spec.Fingerprint(seed); the store composes an in-memory
// LRU, a crash-safe disk tier and a peer fetch-through tier behind one
// interface, with a singleflight group collapsing concurrent identical
// fills.
type (
	// ResultStore is the tier contract (Get/Put/Stats/Close by fingerprint).
	ResultStore = store.Store
	// TieredStore is the composed memory → disk → peers store the server runs.
	TieredStore = store.Tiered
	// StoreOptions configures a TieredStore's tiers.
	StoreOptions = store.Options
	// MemoryStore is tier 0: the in-process LRU.
	MemoryStore = store.Memory
	// DiskStore is tier 1: fingerprint-sharded crash-safe files.
	DiskStore = store.Disk
	// PeerStore is tier 2: rendezvous-hashed fetch-through from siblings.
	PeerStore = store.Peers
	// PeerStoreConfig configures a PeerStore.
	PeerStoreConfig = store.PeersConfig
	// StoreStats is the whole store's counter snapshot (/stats payload).
	StoreStats = store.Stats
	// StoreTierStats is one tier's counter snapshot.
	StoreTierStats = store.TierStats
	// StorePayload is the canonical stored form of one mission's verdict.
	StorePayload = store.Payload
)

// NewTieredStore composes a result store from the configured tiers;
// NewMemoryStore, NewDiskStore and NewPeerStore build the individual tiers.
func NewTieredStore(opts StoreOptions) *TieredStore { return store.NewTiered(opts) }

// NewMemoryStore builds the in-process LRU tier (capacity entries; 0 =
// default).
func NewMemoryStore(capacity int) *MemoryStore { return store.NewMemory(capacity) }

// NewDiskStore opens the crash-safe disk tier rooted at dir (maxBytes 0 =
// default 1 GiB).
func NewDiskStore(dir string, maxBytes int64) (*DiskStore, error) {
	return store.NewDisk(dir, maxBytes)
}

// NewPeerStore builds the peer fetch-through tier over sibling soter-serve
// base URLs.
func NewPeerStore(cfg PeerStoreConfig) (*PeerStore, error) { return store.NewPeers(cfg) }

// Job lifecycle states.
const (
	JobQueued    = service.StatusQueued
	JobRunning   = service.StatusRunning
	JobDone      = service.StatusDone
	JobFailed    = service.StatusFailed
	JobCancelled = service.StatusCancelled
)

// NewService builds a job server and starts its runners; Close releases
// them. Handler() adapts it to HTTP — cmd/soter-serve is exactly that
// wiring plus graceful shutdown. It errors when the configured store tiers
// cannot be opened.
func NewService(cfg ServiceConfig) (*ServiceServer, error) { return service.New(cfg) }

// Falsification vocabulary, re-exported from internal/falsify: adversarial
// counterexample search over the scenario × policy × seed space. Campaigns
// are deterministic given (strategy, seed, budget); counterexamples are
// self-contained and replayable. The serving layer runs the same engine as
// POST /falsify jobs (FalsifyJobSpec below).
type (
	// FalsifyConfig configures a falsification campaign.
	FalsifyConfig = falsify.Config
	// FalsifyResult is a campaign's deterministic ranked summary.
	FalsifyResult = falsify.Result
	// FalsifyParams is one point of the search space — the JSON delta a
	// counterexample carries to be replayed over its base scenario.
	FalsifyParams = falsify.Params
	// FalsifyVerdict is the oracle's summary of one candidate execution.
	FalsifyVerdict = falsify.Verdict
	// Counterexample is one distinct falsifying execution, replayable.
	Counterexample = falsify.Counterexample
	// FalsifyStrategy decides how a campaign spends its execution budget.
	FalsifyStrategy = falsify.Strategy
	// FalsifyStrategyFactory builds a strategy from a "name:K" spec parameter.
	FalsifyStrategyFactory = falsify.StrategyFactory
	// CorpusEntry is the on-disk form of a counterexample (testdata corpora).
	CorpusEntry = falsify.CorpusEntry
	// FalsifyJobSpec is the serving layer's falsification-campaign request.
	FalsifyJobSpec = service.FalsifyJobSpec
)

// Falsify runs one falsification campaign to completion (or cancellation).
func Falsify(ctx context.Context, cfg FalsifyConfig) (*FalsifyResult, error) {
	return falsify.Campaign(ctx, cfg)
}

// RegisterFalsifyStrategy adds a named search strategy to the falsification
// registry. Built-ins: random (seeded uniform sampling, the default), guided
// (hill-climb on the severity objective), schedule (bounded-asynchrony
// interleaving enumeration).
func RegisterFalsifyStrategy(name string, f FalsifyStrategyFactory) error {
	return falsify.RegisterStrategy(name, f)
}

// FalsifyStrategyNames returns the registered strategy names, sorted.
func FalsifyStrategyNames() []string { return falsify.StrategyNames() }

// CanonicalFalsifyStrategySpec normalizes a strategy spec, making defaults
// explicit ("" → "random", "guided" → "guided:8").
func CanonicalFalsifyStrategySpec(spec string) (string, error) {
	return falsify.CanonicalStrategySpec(spec)
}

// Certification vocabulary, re-exported from internal/certify: statistical
// crash-probability certification of (scenario, overrides, policy) cells by
// sequential seed sweeps with early stopping — "crash probability < 1e-3 at
// 95% confidence" as a first-class, deterministic verdict. The serving layer
// runs the same engine as POST /certify jobs (CertifyJobSpec below).
type (
	// CertifyConfig configures one certification cell and its test.
	CertifyConfig = certify.Config
	// CertifyResult is a certification campaign's deterministic summary.
	CertifyResult = certify.Result
	// CertifyVerdict is the campaign's terminal answer.
	CertifyVerdict = certify.Verdict
	// CertifyInterval is a confidence interval on the crash probability.
	CertifyInterval = certify.Interval
	// CertifyMatrixConfig sweeps one test over a scenarios × policies grid.
	CertifyMatrixConfig = certify.MatrixConfig
	// CertifyMatrixResult is the certification matrix with verdict tallies.
	CertifyMatrixResult = certify.MatrixResult
	// CertifyJobSpec is the serving layer's certification request.
	CertifyJobSpec = service.CertifyJobSpec
)

// Certification verdicts.
const (
	// CertifiedVerdict: the interval's upper bound is below the threshold.
	CertifiedVerdict = certify.VerdictCertified
	// RefutedVerdict: the interval's lower bound is above the threshold.
	RefutedVerdict = certify.VerdictRefuted
	// InconclusiveVerdict: the budget ran out with the interval straddling.
	InconclusiveVerdict = certify.VerdictInconclusive
)

// Certify runs one certification campaign to completion, early stop, or
// cancellation (returning the partial result marked inconclusive).
func Certify(ctx context.Context, cfg CertifyConfig) (*CertifyResult, error) {
	return certify.Certify(ctx, cfg)
}

// CertifyMatrix certifies every cell of a scenarios × policies grid.
func CertifyMatrix(ctx context.Context, mc CertifyMatrixConfig) (*CertifyMatrixResult, error) {
	return certify.Matrix(ctx, mc)
}

// Modes.
const (
	// ModeSC: the certified safe controller is in control.
	ModeSC = rta.ModeSC
	// ModeAC: the advanced (untrusted) controller is in control.
	ModeAC = rta.ModeAC
)

// Switch reasons, as carried by ModeSwitchEvent.Reason and Switch.Reason.
const (
	// ReasonNone: the decision kept the current mode with nothing noteworthy
	// to report (the zero value of the vocabulary).
	ReasonNone = rta.ReasonNone
	// ReasonTTFTrip: the policy disengaged the AC because ttf2Δ failed.
	ReasonTTFTrip = rta.ReasonTTFTrip
	// ReasonRecovery: the policy's recovery condition re-engaged the AC.
	ReasonRecovery = rta.ReasonRecovery
	// ReasonDwellHold: the policy held SC although φsafer held (dwell or
	// hysteresis not yet satisfied); never appears on an actual switch.
	ReasonDwellHold = rta.ReasonDwellHold
	// ReasonClamped: the framework overrode a policy's unsafe AC proposal.
	ReasonClamped = rta.ReasonClamped
	// ReasonCoordinated: a forced demotion through a coordination link.
	ReasonCoordinated = rta.ReasonCoordinated
)

// DefaultPolicyName names the built-in Figure 9 switching policy — the
// default wherever a policy can be named but is not.
const DefaultPolicyName = rta.DefaultPolicyName

// RegisterPolicy adds a named switching-policy factory to the registry, so
// scenarios, jobs and CLIs can select it by spec string ("name" or
// "name:K"). Built-ins: soter-fig9 (the paper's Figure 9 rules, the
// default), sticky-sc (minimum SC dwell), hysteresis (recovery debounce),
// always-ac and always-sc (ablation bounds).
func RegisterPolicy(name string, f PolicyFactory) error { return rta.RegisterPolicy(name, f) }

// ParsePolicy resolves a policy spec against the registry ("" selects the
// default Figure 9 policy).
func ParsePolicy(spec string) (Policy, error) { return rta.ParsePolicy(spec) }

// PolicyNames returns the registered policy names, sorted.
func PolicyNames() []string { return rta.PolicyNames() }

// CanonicalPolicySpec normalizes a policy spec, making the default name and
// defaulted parameters explicit ("" → "soter-fig9", "sticky-sc" →
// "sticky-sc:10").
func CanonicalPolicySpec(spec string) (string, error) { return rta.CanonicalPolicySpec(spec) }

// Composition and well-formedness errors.
var (
	// ErrNotWellFormed reports a violation of the structural well-formedness
	// conditions (P1a), (P1b) or a failed certificate check.
	ErrNotWellFormed = rta.ErrNotWellFormed
	// ErrNotComposable reports node or output overlap between modules.
	ErrNotComposable = rta.ErrNotComposable
)

// NewNode declares a periodic node (Figure 4): name, period, subscribed
// topics, published topics and the transition function.
func NewNode(name string, period time.Duration, inputs, outputs []TopicName, step StepFunc, opts ...NodeOption) (*Node, error) {
	return node.New(name, period, inputs, outputs, step, opts...)
}

// WithPhase offsets a node's first firing.
func WithPhase(p time.Duration) NodeOption { return node.WithPhase(p) }

// WithInit sets a node's initial-local-state constructor.
func WithInit(f func() State) NodeOption { return node.WithInit(f) }

// NewRTAModule compiles an RTA module declaration (Figure 7): it checks the
// structural well-formedness conditions and generates the decision module
// implementing the Figure 9 switching logic.
func NewRTAModule(d ModuleDecl) (*Module, error) { return rta.NewModule(d) }

// NewSystem composes RTA modules and plain nodes, enforcing the
// composability conditions of Section IV (disjoint nodes, disjoint outputs).
func NewSystem(modules []*Module, plain []*Node) (*System, error) {
	return rta.NewSystem(modules, plain)
}

// Compose forms the union of two RTA systems.
func Compose(a, b *System) (*System, error) { return rta.Compose(a, b) }

// NewExecutor builds an executor for the system; envTopics declares
// environment-input topics and their defaults.
func NewExecutor(sys *System, envTopics []Topic, opts ...ExecutorOption) (*Executor, error) {
	return runtime.New(sys, envTopics, opts...)
}

// WithEnvironment installs the environment hook on an executor.
func WithEnvironment(env Environment) ExecutorOption { return runtime.WithEnvironment(env) }

// WithInvariantChecking makes the executor assert φInv at every DM step.
func WithInvariantChecking() ExecutorOption { return runtime.WithInvariantChecking() }

// WithObservers attaches observers to the executor's event stream.
func WithObservers(observers ...Observer) ExecutorOption {
	return runtime.WithObservers(observers...)
}

// WithSwitchHook registers a callback invoked on every DM mode change. It is
// a shim over WithObservers with an observer interested only in
// ModeSwitchEvent.
func WithSwitchHook(fn func(Switch)) ExecutorOption { return runtime.WithSwitchHook(fn) }

// WithDropFilter installs a firing filter modelling best-effort scheduling.
func WithDropFilter(drop func(ct time.Duration, nodeName string) bool) ExecutorOption {
	return runtime.WithDropFilter(drop)
}
