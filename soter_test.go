package soter_test

import (
	"errors"
	"math"
	"testing"
	"time"

	soter "repro"
)

// rover is the 1D plant used by the public-API tests: position x, velocity
// v, acceleration commands clamped to ±accelMax, walls at 0 and 100.
type rover struct{ x, v float64 }

const (
	roverAccel  = 2.0
	roverVmax   = 5.0
	roverLo     = 0.0
	roverHi     = 100.0
	roverMargin = 1.0
	roverDelta  = 100 * time.Millisecond
	roverTick   = 20 * time.Millisecond
)

func roverBrakeDist(v float64) float64 { return v * v / (2 * roverAccel) }

func roverMaxDisp(v, t float64) float64 {
	v = math.Min(v, roverVmax)
	t1 := (roverVmax - v) / roverAccel
	var d float64
	if t <= t1 {
		d = v*t + 0.5*roverAccel*t*t
	} else {
		d = v*t1 + 0.5*roverAccel*t1*t1 + roverVmax*(t-t1)
	}
	return math.Max(0, d)
}

func roverStopSpan(x, v, t float64) (lo, hi float64) {
	vHi := math.Min(roverVmax, v+roverAccel*t)
	vLo := math.Max(-roverVmax, v-roverAccel*t)
	hi = x + roverMaxDisp(v, t) + roverBrakeDist(math.Max(vHi, 0))
	lo = x - roverMaxDisp(-v, t) - roverBrakeDist(math.Max(-vLo, 0))
	return lo, hi
}

func roverSafe(x, v float64) bool {
	return x-roverBrakeDist(math.Max(-v, 0)) >= roverLo+roverMargin &&
		x+roverBrakeDist(math.Max(v, 0)) <= roverHi-roverMargin
}

func roverTTF(x, v float64) bool {
	lo, hi := roverStopSpan(x, v, (2 * roverDelta).Seconds())
	return lo < roverLo+roverMargin || hi > roverHi-roverMargin
}

func roverSafer(x, v float64) bool {
	lo, hi := roverStopSpan(x, v, (4 * roverDelta).Seconds())
	return lo >= roverLo+roverMargin && hi <= roverHi-roverMargin
}

func roverStateOf(v soter.Valuation) (rover, bool) {
	raw, ok := v["rover/state"]
	if !ok || raw == nil {
		return rover{}, false
	}
	r, ok := raw.(rover)
	return r, ok
}

// buildRoverModule assembles the quickstart RTA module through the public
// API: full-throttle AC, braking SC, reachability-based predicates.
func buildRoverModule(t *testing.T, name string, topicPrefix string) *soter.Module {
	t.Helper()
	stateT := soter.TopicName(topicPrefix + "/state")
	cmdT := soter.TopicName(topicPrefix + "/cmd")
	stateOf := func(v soter.Valuation) (rover, bool) {
		raw, ok := v[stateT]
		if !ok || raw == nil {
			return rover{}, false
		}
		r, ok := raw.(rover)
		return r, ok
	}
	ac, err := soter.NewNode(name+".ac", roverTick,
		[]soter.TopicName{stateT}, []soter.TopicName{cmdT},
		func(st soter.State, _ soter.Valuation) (soter.State, soter.Valuation, error) {
			return st, soter.Valuation{cmdT: roverAccel}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := soter.NewNode(name+".sc", roverTick,
		[]soter.TopicName{stateT}, []soter.TopicName{cmdT},
		func(st soter.State, in soter.Valuation) (soter.State, soter.Valuation, error) {
			r, ok := stateOf(in)
			if !ok {
				return st, soter.Valuation{cmdT: 0.0}, nil
			}
			u := -r.v / roverTick.Seconds()
			u = math.Max(-roverAccel, math.Min(roverAccel, u))
			return st, soter.Valuation{cmdT: u}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	mod, err := soter.NewRTAModule(soter.ModuleDecl{
		Name:  name,
		AC:    ac,
		SC:    sc,
		Delta: roverDelta,
		TTF2Delta: func(v soter.Valuation) bool {
			r, ok := stateOf(v)
			return !ok || roverTTF(r.x, r.v)
		},
		InSafer: func(v soter.Valuation) bool {
			r, ok := stateOf(v)
			return ok && roverSafer(r.x, r.v)
		},
		Safe: func(v soter.Valuation) bool {
			r, ok := stateOf(v)
			return !ok || roverSafe(r.x, r.v)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

// roverEnv integrates one rover and publishes its state on the topic.
func roverEnv(r *rover, stateT, cmdT soter.TopicName) soter.Environment {
	return soter.EnvironmentFunc(func(prev, now time.Duration, topics *soter.Store) error {
		dt := (now - prev).Seconds()
		u := 0.0
		if raw, err := topics.Get(cmdT); err == nil && raw != nil {
			if v, ok := raw.(float64); ok {
				u = math.Max(-roverAccel, math.Min(roverAccel, v))
			}
		}
		r.v = math.Max(-roverVmax, math.Min(roverVmax, r.v+u*dt))
		r.x += r.v * dt
		return topics.Set(stateT, *r)
	})
}

// TestTheorem31EndToEnd: the RTA module keeps the rover inside φsafe for the
// whole run with φInv checked at every DM step, while a plain AC-only system
// escapes. This is the public-API statement of Theorem 3.1.
func TestTheorem31EndToEnd(t *testing.T) {
	mod := buildRoverModule(t, "SafeRover", "rover")
	sys, err := soter.NewSystem([]*soter.Module{mod}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := rover{x: 10}
	exec, err := soter.NewExecutor(sys,
		[]soter.Topic{{Name: "rover/state", Default: r}},
		soter.WithInvariantChecking(),
		soter.WithEnvironment(roverEnv(&r, "rover/state", "rover/cmd")),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := exec.RunUntil(60 * time.Second); err != nil {
		t.Fatalf("φInv violated: %v", err)
	}
	if r.x < roverLo+roverMargin || r.x > roverHi-roverMargin {
		t.Fatalf("rover escaped φsafe: x=%v", r.x)
	}
	// The rover made real progress under the AC before the SC parked it.
	if r.x < 90 {
		t.Errorf("rover should use the fast AC most of the way: x=%v", r.x)
	}

	// Contrast: AC alone blows through the wall.
	acOnly, err := soter.NewNode("solo", roverTick, []soter.TopicName{"rover/state"},
		[]soter.TopicName{"rover/cmd"},
		func(st soter.State, _ soter.Valuation) (soter.State, soter.Valuation, error) {
			return st, soter.Valuation{"rover/cmd": roverAccel}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	plainSys, err := soter.NewSystem(nil, []*soter.Node{acOnly})
	if err != nil {
		t.Fatal(err)
	}
	r2 := rover{x: 10}
	exec2, err := soter.NewExecutor(plainSys,
		[]soter.Topic{{Name: "rover/state", Default: r2}},
		soter.WithEnvironment(roverEnv(&r2, "rover/state", "rover/cmd")),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := exec2.RunUntil(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	if r2.x <= roverHi {
		t.Errorf("unprotected rover should escape: x=%v", r2.x)
	}
}

// TestTheorem41Composition: two independently protected rovers compose; the
// conjunction of their invariants holds; output overlap is rejected.
func TestTheorem41Composition(t *testing.T) {
	m1 := buildRoverModule(t, "RoverA", "a")
	m2 := buildRoverModule(t, "RoverB", "b")
	sys, err := soter.NewSystem([]*soter.Module{m1, m2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := rover{x: 10}, rover{x: 50}
	envA := roverEnv(&ra, "a/state", "a/cmd")
	envB := roverEnv(&rb, "b/state", "b/cmd")
	both := soter.EnvironmentFunc(func(prev, now time.Duration, topics *soter.Store) error {
		if err := envA.Advance(prev, now, topics); err != nil {
			return err
		}
		return envB.Advance(prev, now, topics)
	})
	exec, err := soter.NewExecutor(sys,
		[]soter.Topic{{Name: "a/state", Default: ra}, {Name: "b/state", Default: rb}},
		soter.WithInvariantChecking(),
		soter.WithEnvironment(both),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := exec.RunUntil(60 * time.Second); err != nil {
		t.Fatalf("composed invariant violated: %v", err)
	}
	for name, x := range map[string]float64{"A": ra.x, "B": rb.x} {
		if x < roverLo+roverMargin || x > roverHi-roverMargin {
			t.Errorf("rover %s escaped: x=%v", name, x)
		}
	}

	// Output overlap: both modules on the same command topic is rejected.
	m3 := buildRoverModule(t, "RoverC", "a")
	if _, err := soter.NewSystem([]*soter.Module{m1, m3}, nil); !errors.Is(err, soter.ErrNotComposable) {
		t.Errorf("overlapping composition error = %v", err)
	}
}

// TestPublicWellFormednessErrors: the compiler-style checks surface through
// the public API.
func TestPublicWellFormednessErrors(t *testing.T) {
	ac, err := soter.NewNode("ac", time.Second, nil, []soter.TopicName{"cmd"},
		func(st soter.State, _ soter.Valuation) (soter.State, soter.Valuation, error) {
			return st, nil, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := soter.NewNode("sc", time.Second, nil, []soter.TopicName{"other"},
		func(st soter.State, _ soter.Valuation) (soter.State, soter.Valuation, error) {
			return st, nil, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	_, err = soter.NewRTAModule(soter.ModuleDecl{
		Name: "bad", AC: ac, SC: sc, Delta: time.Second,
		TTF2Delta: func(soter.Valuation) bool { return false },
		InSafer:   func(soter.Valuation) bool { return true },
	})
	if !errors.Is(err, soter.ErrNotWellFormed) {
		t.Errorf("(P1b) violation error = %v, want ErrNotWellFormed", err)
	}
}

// TestSwitchTelemetry: the paper's "programmable switching" is observable:
// the rover run records both the disengagement and the re-engagement... the
// rover parks at the wall, so here we check the hook fires with correct
// metadata on the first AC engagement.
func TestSwitchTelemetry(t *testing.T) {
	mod := buildRoverModule(t, "SafeRover", "rover")
	sys, err := soter.NewSystem([]*soter.Module{mod}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := rover{x: 10}
	var switches []soter.Switch
	exec, err := soter.NewExecutor(sys,
		[]soter.Topic{{Name: "rover/state", Default: r}},
		soter.WithEnvironment(roverEnv(&r, "rover/state", "rover/cmd")),
		soter.WithSwitchHook(func(sw soter.Switch) { switches = append(switches, sw) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := exec.RunUntil(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(switches) < 2 {
		t.Fatalf("switches = %v", switches)
	}
	first := switches[0]
	if first.Module != "SafeRover" || first.From != soter.ModeSC || first.To != soter.ModeAC {
		t.Errorf("first switch = %+v", first)
	}
	// Modes reported by the executor match the last switch.
	mode, err := exec.Mode("SafeRover")
	if err != nil {
		t.Fatal(err)
	}
	if mode != switches[len(switches)-1].To {
		t.Errorf("mode = %v, last switch to %v", mode, switches[len(switches)-1].To)
	}
}

// buildUnsoundRoverModule builds a module whose ttf check looks ahead only a
// fraction of the required 2Δ — violating the premise of Theorem 3.1 (the
// DM must detect danger early enough for the SC to act within its sampling
// period). The well-formedness conditions cannot catch this statically (the
// predicate is a black-box function); the negative tests show the invariant
// monitor and the safety outcome expose it.
func buildUnsoundRoverModule(t *testing.T, lookahead float64) *soter.Module {
	t.Helper()
	ac, err := soter.NewNode("u.ac", roverTick,
		[]soter.TopicName{"rover/state"}, []soter.TopicName{"rover/cmd"},
		func(st soter.State, _ soter.Valuation) (soter.State, soter.Valuation, error) {
			return st, soter.Valuation{"rover/cmd": roverAccel}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := soter.NewNode("u.sc", roverTick,
		[]soter.TopicName{"rover/state"}, []soter.TopicName{"rover/cmd"},
		func(st soter.State, in soter.Valuation) (soter.State, soter.Valuation, error) {
			r, ok := roverStateOf(in)
			if !ok {
				return st, soter.Valuation{"rover/cmd": 0.0}, nil
			}
			u := math.Max(-roverAccel, math.Min(roverAccel, -r.v/roverTick.Seconds()))
			return st, soter.Valuation{"rover/cmd": u}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	mod, err := soter.NewRTAModule(soter.ModuleDecl{
		Name:  "UnsoundRover",
		AC:    ac,
		SC:    sc,
		Delta: roverDelta,
		TTF2Delta: func(v soter.Valuation) bool {
			r, ok := roverStateOf(v)
			if !ok {
				return true
			}
			// Only `lookahead` seconds of adversarial horizon instead of 2Δ.
			vHi := math.Min(roverVmax, r.v+roverAccel*lookahead)
			hi := r.x + roverMaxDisp(r.v, lookahead) + roverBrakeDist(math.Max(vHi, 0))
			return hi > roverHi-roverMargin || r.x < roverLo+roverMargin
		},
		InSafer: func(v soter.Valuation) bool {
			r, ok := roverStateOf(v)
			return ok && roverSafer(r.x, r.v)
		},
		Safe: func(v soter.Valuation) bool {
			r, ok := roverStateOf(v)
			return !ok || roverSafe(r.x, r.v)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

// TestUnsoundLookaheadViolatesInvariant: with a ttf horizon far below 2Δ the
// DM switches too late; the φInv monitor flags the violation — the 2Δ in
// Figure 9 is load-bearing, not a tuning detail.
func TestUnsoundLookaheadViolatesInvariant(t *testing.T) {
	mod := buildUnsoundRoverModule(t, 0.005) // 5ms instead of 200ms
	sys, err := soter.NewSystem([]*soter.Module{mod}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := rover{x: 10}
	exec, err := soter.NewExecutor(sys,
		[]soter.Topic{{Name: "rover/state", Default: r}},
		soter.WithInvariantChecking(),
		soter.WithEnvironment(roverEnv(&r, "rover/state", "rover/cmd")),
	)
	if err != nil {
		t.Fatal(err)
	}
	err = exec.RunUntil(60 * time.Second)
	var iv *soter.InvariantViolationError
	if !errors.As(err, &iv) {
		t.Fatalf("expected a φInv violation with a 5ms lookahead, got err=%v (x=%v)", err, r.x)
	}
}

// TestSufficientLookaheadIsSafe: the same module with the full 2Δ horizon
// passes the monitor — the control for the negative test above.
func TestSufficientLookaheadIsSafe(t *testing.T) {
	mod := buildUnsoundRoverModule(t, (2 * roverDelta).Seconds())
	sys, err := soter.NewSystem([]*soter.Module{mod}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := rover{x: 10}
	exec, err := soter.NewExecutor(sys,
		[]soter.Topic{{Name: "rover/state", Default: r}},
		soter.WithInvariantChecking(),
		soter.WithEnvironment(roverEnv(&r, "rover/state", "rover/cmd")),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := exec.RunUntil(60 * time.Second); err != nil {
		t.Fatalf("full-horizon module violated φInv: %v", err)
	}
	if r.x > roverHi-roverMargin {
		t.Fatalf("rover escaped: x=%v", r.x)
	}
}
