// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section V). Each experiment bench runs the corresponding workload from
// internal/experiments and prints the paper-style rows once per `go test
// -bench` invocation; ns/op measures the cost of regenerating the artifact.
// Micro-benchmarks at the bottom measure the framework's hot paths (DM
// decisions, reachability checks, executor throughput, planners).
package soter_test

import (
	"context"
	"fmt"
	goruntime "runtime"
	"sync"
	"testing"
	"time"

	soter "repro"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/geom"
	"repro/internal/mission"
	"repro/internal/plan"
	"repro/internal/plant"
	"repro/internal/pubsub"
	"repro/internal/reach"
	"repro/internal/rta"
	"repro/internal/sim"
)

// printOnce prints each experiment table a single time even when the bench
// harness loops.
var printOnce sync.Map

func report(b *testing.B, key, text string) {
	b.Helper()
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Printf("\n%s\n", text)
	}
}

// BenchmarkFig5ThirdPartyController regenerates Figure 5 (right): the
// unprotected PX4-style controller overshooting into the red regions on the
// g1..g4 tour.
func BenchmarkFig5ThirdPartyController(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5Right(experiments.Fig5Config{Seed: 1, Laps: 10})
		if err != nil {
			b.Fatal(err)
		}
		report(b, "fig5r", res.Format())
		if res.CollidingLaps == 0 {
			b.Fatal("expected the unprotected third-party controller to collide")
		}
	}
}

// BenchmarkFig5LearnedController regenerates Figure 5 (left): the
// data-driven controller on the figure-eight, some loops deviating
// dangerously.
func BenchmarkFig5LearnedController(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5Left(experiments.Fig5Config{Seed: 5, Laps: 12})
		if err != nil {
			b.Fatal(err)
		}
		report(b, "fig5l", res.Format())
		if res.UnsafeLoops == 0 || res.UnsafeLoops == res.Loops {
			b.Fatalf("expected a mix of safe and unsafe loops, got %d/%d", res.UnsafeLoops, res.Loops)
		}
	}
}

// BenchmarkFig6RTAProtectedPrimitive regenerates the Figure 6 behaviour: one
// RTA-protected transfer with a faulty AC — switch to SC, recover, switch
// back, arrive safely.
func BenchmarkFig6RTAProtectedPrimitive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(experiments.Fig6Config{Seed: 2})
		if err != nil {
			b.Fatal(err)
		}
		report(b, "fig6", res.Format())
		if res.Crashed || !res.Reached || res.Disengagements == 0 {
			b.Fatalf("unexpected fig6 outcome: %+v", res)
		}
	}
}

// BenchmarkFig10Regions regenerates the Figure 10 regions of operation and
// the Figure 12b yellow/green region statistics (grid BRS).
func BenchmarkFig10Regions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(experiments.Fig10Config{Seed: 3, Samples: 4000})
		if err != nil {
			b.Fatal(err)
		}
		report(b, "fig10", res.Format())
	}
}

// BenchmarkFig12aTimingComparison regenerates the Figure 12a timing numbers:
// AC-only (fast, collides) vs RTA (middle) vs SC-only (slow, safe).
func BenchmarkFig12aTimingComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig12a(experiments.Fig12aConfig{Seed: 4, Tours: 2})
		if err != nil {
			b.Fatal(err)
		}
		report(b, "fig12a", res.Format())
	}
}

// BenchmarkFig12bSurveillance regenerates Figure 12b: the RTA-protected
// surveillance mission with SC take-overs at the N points.
func BenchmarkFig12bSurveillance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig12b(experiments.Fig12bConfig{Seed: 7, Duration: 2 * time.Minute, Faults: true})
		if err != nil {
			b.Fatal(err)
		}
		report(b, "fig12b", res.Format())
		if res.Crashed {
			b.Fatal("RTA-protected surveillance mission crashed")
		}
	}
}

// BenchmarkFig12cBatterySafety regenerates Figure 12c: the battery DM lands
// the drone before the charge runs out.
func BenchmarkFig12cBatterySafety(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig12c(experiments.Fig12cConfig{Seed: 11})
		if err != nil {
			b.Fatal(err)
		}
		report(b, "fig12c", res.Format())
		if res.Crashed || !res.Landed {
			b.Fatalf("battery safety failed: %+v", res)
		}
	}
}

// BenchmarkSec5cSafePlanner regenerates the Section V-C planner comparison.
func BenchmarkSec5cSafePlanner(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Sec5c(experiments.Sec5cConfig{Seed: 3, Queries: 40, ClosedLoop: time.Minute})
		if err != nil {
			b.Fatal(err)
		}
		report(b, "sec5c", res.Format())
		if res.BuggyColliding == 0 || res.CertColliding != 0 || res.ClosedCrashed {
			b.Fatalf("unexpected sec5c outcome: %+v", res)
		}
	}
}

// BenchmarkSec5dEndurance regenerates the Section V-D endurance study
// (scaled hours): disengagements, crashes under best-effort scheduling vs an
// RTOS, AC-control fraction.
func BenchmarkSec5dEndurance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Sec5d(experiments.Sec5dConfig{Seed: 13, SimHours: 0.5})
		if err != nil {
			b.Fatal(err)
		}
		report(b, "sec5d", res.Format())
	}
}

// BenchmarkAblationDelta regenerates the Remark 3.3 ablation: Δ and
// hysteresis vs AC usage and switching.
func BenchmarkAblationDelta(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationDelta(experiments.AblationConfig{Seed: 6})
		if err != nil {
			b.Fatal(err)
		}
		report(b, "abl1", res.Format())
	}
}

// BenchmarkAblationNoReturn regenerates the two-way vs one-way switching
// ablation (the paper's extension over classic Simplex).
func BenchmarkAblationNoReturn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationReturn(experiments.AblationConfig{Seed: 6})
		if err != nil {
			b.Fatal(err)
		}
		report(b, "abl2", res.Format())
	}
}

// BenchmarkAblationPolicy regenerates the switching-policy grid opened by
// the rta.Policy redesign: every registered policy family on the faulted
// mission, all crash-free by the framework clamp.
func BenchmarkAblationPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationPolicy(experiments.AblationConfig{Seed: 6})
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Crashed {
				b.Fatalf("policy %s crashed — the framework clamp must keep every policy safe", row.Policy)
			}
		}
		report(b, "abl3", res.Format())
	}
}

// BenchmarkFleetScaling measures batch-simulation throughput of the fleet
// engine at 1, 4 and GOMAXPROCS workers on a fixed batch of independent
// surveillance missions. Every mission builds its own stack, store, executor
// and RNG inside the worker, so on multi-core hardware throughput scales
// near-linearly with the worker bound (the acceptance target is ≥2x at 4
// workers vs 1); on a single-core box the worker counts tie. The reported
// missions/s metric is the batch throughput.
func BenchmarkFleetScaling(b *testing.B) {
	const batch = 8
	missions := fleet.SeedSweep("scale", fleet.Seeds(1, batch), func(seed int64) (sim.RunConfig, error) {
		mcfg := mission.DefaultStackConfig(seed)
		mcfg.App = mission.AppConfig{Points: []geom.Vec3{
			geom.V(3, 3, 2), geom.V(46, 46, 2), geom.V(3, 46, 2.5),
		}}
		st, err := mission.Build(mcfg)
		if err != nil {
			return sim.RunConfig{}, err
		}
		return sim.RunConfig{
			Stack:           st,
			Initial:         plant.State{Pos: geom.V(3, 3, 2), Battery: 1},
			Duration:        10 * time.Second,
			Seed:            seed,
			CheckInvariants: true,
		}, nil
	})
	workerCounts := []int{1, 4}
	if p := goruntime.GOMAXPROCS(0); p != 1 && p != 4 {
		workerCounts = append(workerCounts, p)
	}
	for _, workers := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var completed int
			start := time.Now()
			for i := 0; i < b.N; i++ {
				rep := fleet.Run(context.Background(), missions, fleet.Options{Workers: workers})
				if err := rep.FirstErr(); err != nil {
					b.Fatal(err)
				}
				if rep.Crashes != 0 {
					b.Fatalf("%d protected missions crashed", rep.Crashes)
				}
				completed += rep.Missions
			}
			b.ReportMetric(float64(completed)/time.Since(start).Seconds(), "missions/s")
		})
	}
}

// --- framework micro-benchmarks ---------------------------------------------

// BenchmarkDMDecision measures one decision-module evaluation (Figure 9
// switching logic) on the motion-primitive predicates.
func BenchmarkDMDecision(b *testing.B) {
	cfg := mission.DefaultStackConfig(1)
	cfg.App = mission.AppConfig{Points: []geom.Vec3{geom.V(46, 46, 2)}}
	st, err := mission.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	mod := st.PrimitiveModule
	val := pubsub.Valuation{
		mission.TopicDroneState: plant.State{Pos: geom.V(20, 16, 3), Vel: geom.V(2, 0, 0), Battery: 1},
		mission.TopicWaypoint:   mission.Waypoint{Target: geom.V(30, 16, 3), Valid: true},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = mod.Decide(rta.ModeAC, val)
	}
}

// BenchmarkStopBox measures the analytic worst-case reach computation at the
// core of ttf2Δ.
func BenchmarkStopBox(b *testing.B) {
	bounds := reach.Bounds{MaxAccel: 5, MaxVel: 3, BrakeDecel: 4}
	pos, vel := geom.V(20, 16, 3), geom.V(2, -1, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = reach.StopBox(pos, vel, bounds, 200*time.Millisecond)
	}
}

// BenchmarkTTF2Delta measures the full switching predicate against the city
// workspace (12 obstacles).
func BenchmarkTTF2Delta(b *testing.B) {
	ws := geom.CityWorkspace()
	an, err := reach.NewAnalyzer(ws, reach.Bounds{MaxAccel: 5, MaxVel: 3, BrakeDecel: 4}, 0.45, 100*time.Millisecond, 2)
	if err != nil {
		b.Fatal(err)
	}
	pos, vel := geom.V(20, 16, 3), geom.V(2, -1, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = an.TTF2Delta(pos, vel)
	}
}

// BenchmarkExecutorStep measures discrete-event executor throughput on the
// full surveillance stack (events per second of the runtime itself).
func BenchmarkExecutorStep(b *testing.B) {
	cfg := mission.DefaultStackConfig(1)
	cfg.App = mission.AppConfig{Points: []geom.Vec3{geom.V(3, 3, 2), geom.V(46, 46, 2)}}
	st, err := mission.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	exec, err := buildBareExecutor(st)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// buildBareExecutor creates an executor over the stack's system with a
// static drone-state topic (no plant in the loop) — measuring the runtime's
// own event-processing cost.
func buildBareExecutor(st *mission.Stack) (*soter.Executor, error) {
	return soter.NewExecutor(st.System, []soter.Topic{{
		Name:    mission.TopicDroneState,
		Default: plant.State{Pos: geom.V(3, 3, 2), Battery: 1},
	}})
}

// BenchmarkRRTStarPlan measures one RRT* planning query in the city
// workspace.
func BenchmarkRRTStarPlan(b *testing.B) {
	ws := geom.CityWorkspace()
	cfg := plan.DefaultRRTStarConfig(1)
	cfg.Margin = 0.45
	p, err := plan.NewRRTStar(ws, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Plan(geom.V(3, 3, 2), geom.V(46, 46, 2)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAStarPlan measures one certified A* planning query.
func BenchmarkAStarPlan(b *testing.B) {
	ws := geom.CityWorkspace()
	p, err := plan.NewAStar(ws, 1.0, 0.45)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Plan(geom.V(3, 3, 2), geom.V(46, 46, 2)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBackwardReachSet measures the grid BRS computation (Level-Set
// Toolbox stand-in) on the city workspace at 1 m resolution.
func BenchmarkBackwardReachSet(b *testing.B) {
	ws := geom.CityWorkspace()
	grid, err := geom.NewGrid(ws, 1.0, 0.45)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reach.NewBackwardReachSet(grid, 3.0); err != nil {
			b.Fatal(err)
		}
	}
}
