// Command soter-serve runs the simulation-as-a-service layer: a long-running
// HTTP/JSON server accepting batch simulation jobs against the scenario
// registry, running them on the parallel fleet engine, streaming live
// progress as JSONL event streams and answering repeated grid cells from the
// deterministic result cache.
//
// Usage:
//
//	soter-serve [flags]
//
// Quickstart:
//
//	soter-serve -addr :8080 &
//	curl -s localhost:8080/scenarios | jq .
//	id=$(curl -s -X POST localhost:8080/jobs \
//	    -d '{"scenario":"surveillance-city","overrides":{"duration":"30s"},"seed_count":8}' | jq -r .id)
//	curl -sN localhost:8080/jobs/$id/events      # live JSONL event stream
//	curl -s localhost:8080/jobs/$id | jq .report # aggregated verdicts
//	curl -s localhost:8080/stats | jq .store     # per-tier hit/miss counters
//
// Results live in a tiered content-addressed store (internal/store). With
// -store-dir the store gains a crash-safe disk tier: a restarted server
// answers previous sweeps without simulating. With -peers a group of servers
// forms one logical cache — missing results are fetched from the sibling
// that computed them (GET /store/{key}, rendezvous-hashed per fingerprint)
// before falling back to local compute:
//
//	soter-serve -addr :8080 -store-dir /var/soter/a -peers http://localhost:8081 &
//	soter-serve -addr :8081 -store-dir /var/soter/b -peers http://localhost:8080 &
//
// Besides plain sweep jobs the server runs falsification campaigns (POST
// /falsify) and statistical certification campaigns (POST /certify — is the
// cell's crash probability below a threshold at a confidence level?); both
// stream progress over the same /jobs/{id}/events endpoint and serve their
// terminal results at /jobs/{id}/report:
//
//	cid=$(curl -s -X POST localhost:8080/certify \
//	    -d '{"scenario":"surveillance-city","duration":"30s","threshold":0.05}' | jq -r .id)
//	curl -sN localhost:8080/jobs/$cid/events?kinds=certify_progress
//	curl -s localhost:8080/jobs/$cid/report | jq .verdict
//
// SIGINT/SIGTERM shut the server down gracefully: in-flight jobs are
// cancelled (their partial reports are kept and event streams closed), then
// the listener drains.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/scenario"
	"repro/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("soter-serve: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "fleet workers per job (0 = GOMAXPROCS)")
		jobs     = flag.Int("jobs", 1, "jobs running concurrently")
		queue    = flag.Int("queue", 64, "max queued jobs")
		cacheCap = flag.Int("cache", 0, "result store memory-tier entries (LRU bound; 0 = default)")
		storeDir = flag.String("store-dir", "", "result store disk-tier directory (empty = memory only; results survive restarts)")
		storeMax = flag.Int64("store-max-bytes", 0, "disk-tier byte bound (0 = default 1 GiB); LRU-by-atime eviction beyond it")
		peers    = flag.String("peers", "", "comma-separated sibling soter-serve base URLs (e.g. http://10.0.0.2:8080); missing results are fetched from peers before simulating")
	)
	flag.Parse()

	var peerList []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerList = append(peerList, p)
		}
	}
	svc, err := service.New(service.Config{
		Workers:        *workers,
		JobConcurrency: *jobs,
		QueueDepth:     *queue,
		CacheEntries:   *cacheCap,
		StoreDir:       *storeDir,
		StoreMaxBytes:  *storeMax,
		Peers:          peerList,
	})
	if err != nil {
		return err
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("serving %d scenarios on %s", len(scenario.Names()), *addr)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	select {
	case err := <-errCh:
		svc.Close()
		return err
	case <-ctx.Done():
	}
	log.Print("shutting down: cancelling jobs, draining connections")
	// Closing the service first ends every job (and with it every open event
	// stream), so Shutdown is not held up by long-lived streaming responses.
	svc.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	return <-errCh
}
