// Command soter-sim runs a named scenario from the declarative workload
// registry (internal/scenario) in the closed-loop simulator and reports the
// paper's metrics (disengagements, AC-control fraction, safety outcome). It
// can optionally dump the flown trajectory as CSV for plotting the Figure 12
// style figures.
//
// Flags other than -scenario act as overrides: only the flags explicitly set
// on the command line are applied on top of the selected scenario's Spec.
//
// With -trace the full typed event stream of the run — node firings, mode
// switches, time progress, trajectory and battery samples, crashes,
// touchdowns — is written as JSON Lines (one object per line, "kind"
// discriminator) for offline analysis and replay. SIGINT/SIGTERM cancel the
// run gracefully: the metrics accumulated so far still print and the trace
// file is flushed, instead of losing everything.
//
// Usage:
//
//	soter-sim [flags]
//
// Examples:
//
//	soter-sim -list-scenarios
//	soter-sim -scenario canyon-corridor -duration 1m
//	soter-sim -scenario surveillance-city -protection ac-only
//	soter-sim -scenario surveillance-city -policy sticky-sc:25
//	soter-sim -planner-bug skip-edge-check -random-targets
//	soter-sim -csv trajectory.csv
//	soter-sim -trace run.jsonl
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"slices"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/geom"
	"repro/internal/mission"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/rta"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("soter-sim: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		scenarioName = flag.String("scenario", "surveillance-city", "named scenario from the registry (see -list-scenarios)")
		list         = flag.Bool("list-scenarios", false, "print the scenario catalog and exit")
		seed         = flag.Int64("seed", 1, "simulation seed")
		duration     = flag.Duration("duration", 2*time.Minute, "mission duration")
		protection   = flag.String("protection", "rta", "motion layer: rta | ac-only | sc-only")
		acKind       = flag.String("ac", "aggressive", "advanced controller: aggressive | learned")
		faults       = flag.Bool("faults", false, "inject periodic full-thrust faults into the AC")
		plannerBug   = flag.String("planner-bug", "none", "RRT* defect: none | skip-edge-check | unchecked-shortcut | stale-obstacles")
		random       = flag.Bool("random-targets", false, "draw random surveillance targets (Section V-D style)")
		battery      = flag.Float64("battery", 1.0, "initial battery charge fraction")
		drainX       = flag.Float64("drain", 1.0, "battery drain multiplier")
		jitter       = flag.Float64("jitter", 0, "per-firing probability of a scheduling outage (SC/DM nodes)")
		delta        = flag.Duration("delta", 100*time.Millisecond, "motion-primitive DM period Δ")
		hysteresis   = flag.Float64("hysteresis", 2.0, "φsafer horizon multiplier")
		policy       = flag.String("policy", "soter-fig9", "switching policy spec: "+strings.Join(rta.PolicyNames(), " | ")+" (optionally name:K)")
		csvPath      = flag.String("csv", "", "write the flown trajectory to this CSV file")
		tracePath    = flag.String("trace", "", "write the run's event stream to this JSONL file")
	)
	flag.Parse()

	if *list {
		printCatalog()
		return nil
	}
	spec, ok := scenario.Get(*scenarioName)
	if !ok {
		return fmt.Errorf("unknown scenario %q (have: %s)", *scenarioName, strings.Join(scenario.Names(), ", "))
	}

	// Apply only the flags the user actually set as Spec overrides.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if set["duration"] {
		spec.Duration = *duration
	}
	if set["protection"] {
		switch *protection {
		case "rta":
			spec.Protection = mission.ProtectRTA
		case "ac-only":
			spec.Protection = mission.ProtectACOnly
		case "sc-only":
			spec.Protection = mission.ProtectSCOnly
		default:
			return fmt.Errorf("unknown -protection %q", *protection)
		}
	}
	if set["ac"] {
		switch *acKind {
		case "aggressive":
			spec.AC = mission.ACAggressive
		case "learned":
			spec.AC = mission.ACLearned
		default:
			return fmt.Errorf("unknown -ac %q", *acKind)
		}
	}
	if set["planner-bug"] {
		switch *plannerBug {
		case "none":
			spec.PlannerBug, spec.PlannerBugRate = plan.BugNone, 0
		case "skip-edge-check":
			spec.PlannerBug = plan.BugSkipEdgeCheck
		case "unchecked-shortcut":
			spec.PlannerBug = plan.BugUncheckedShortcut
		case "stale-obstacles":
			spec.PlannerBug = plan.BugStaleObstacles
		default:
			return fmt.Errorf("unknown -planner-bug %q", *plannerBug)
		}
	}
	if set["faults"] {
		if *faults {
			spec.Faults = scenario.FaultProfile{
				First: 10 * time.Second,
				Every: 12 * time.Second,
				Len:   1200 * time.Millisecond,
				Dir:   geom.V(1, 0.4, 0),
			}
		} else {
			spec.Faults = scenario.FaultProfile{}
		}
	}
	if set["random-targets"] {
		spec.RandomTargets = *random
		if *random {
			spec.Targets = nil
		} else if len(spec.Targets) == 0 {
			// Turning randomness off on a random-target scenario: fall back
			// to the default city tour rather than an unrunnable Spec.
			spec.Targets = []geom.Vec3{
				geom.V(3, 3, 2), geom.V(46, 3, 2.5), geom.V(46, 46, 2), geom.V(3, 46, 2.5),
			}
		}
	}
	// The Spec layer treats zero as "use the default", so an explicit zero
	// here would be silently ignored — reject it instead.
	if set["battery"] {
		if *battery <= 0 || *battery > 1 {
			return fmt.Errorf("-battery %v outside (0, 1]", *battery)
		}
		spec.InitialBattery = *battery
	}
	if set["drain"] {
		if *drainX <= 0 {
			return fmt.Errorf("-drain %v must be positive", *drainX)
		}
		spec.DrainMultiple = *drainX
	}
	if set["jitter"] {
		spec.JitterProb = *jitter
		spec.JitterSCOnly = true
	}
	if set["delta"] {
		if *delta <= 0 {
			return fmt.Errorf("-delta %v must be positive", *delta)
		}
		spec.MotionDelta = *delta
	}
	if set["hysteresis"] {
		if *hysteresis < 1 {
			// mission.Build silently clamps sub-1 values to the default.
			return fmt.Errorf("-hysteresis %v must be >= 1", *hysteresis)
		}
		spec.Hysteresis = *hysteresis
	}
	if set["policy"] {
		if _, err := rta.ParsePolicy(*policy); err != nil {
			return err
		}
		spec.SwitchPolicy = *policy
	}

	rcfg, err := spec.Build(*seed)
	if err != nil {
		return err
	}
	rcfg.RecordTrajectory = *csvPath != ""
	rcfg.Label = spec.Name

	// SIGINT/SIGTERM cancel the run between executor slices; the partial
	// metrics still print and the trace is flushed below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rcfg.Context = ctx

	var trace *obs.JSONLWriter
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		defer f.Close()
		trace = obs.NewJSONLWriter(f)
		rcfg.Observers = append(rcfg.Observers, trace)
	}

	policyName, err := rta.CanonicalPolicySpec(spec.SwitchPolicy)
	if err != nil {
		return err
	}
	fmt.Printf("SOTER simulator — scenario=%s protection=%s ac=%s Δ=%v policy=%s planner-bug=%v jitter=%.4f\n",
		spec.Name, rcfg.Stack.Config.Protection, acName(rcfg.Stack.Config.AC),
		rcfg.Stack.Config.MotionDelta, policyName, spec.PlannerBug, spec.JitterProb)

	res, err := sim.Run(rcfg)
	interrupted := err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
	if err != nil && !interrupted {
		return fmt.Errorf("simulate: %w", err)
	}
	if interrupted {
		fmt.Printf("\ninterrupted at t=%v — partial report:\n", res.Metrics.Duration)
	}

	printMetrics(res)
	if trace != nil {
		if err := trace.Close(); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		fmt.Printf("trace: event stream written to %s\n", *tracePath)
	}
	if *csvPath != "" {
		if err := writeCSV(*csvPath, res); err != nil {
			return fmt.Errorf("write csv: %w", err)
		}
		fmt.Printf("trajectory: %d samples written to %s\n", len(res.Trajectory), *csvPath)
	}
	if res.Metrics.Crashed {
		return fmt.Errorf("CRASH at t=%v pos=%v", res.Metrics.CrashTime, res.Metrics.CrashPos)
	}
	return nil
}

func acName(k mission.ACKind) string {
	if k == mission.ACLearned {
		return "learned"
	}
	return "aggressive"
}

func printCatalog() {
	specs := scenario.All()
	fmt.Printf("%d registered scenarios:\n\n", len(specs))
	for _, s := range specs {
		fmt.Printf("%-22s %s\n", s.Name, s.Description)
		fmt.Printf("%-22s default duration %v\n\n", "", s.Duration)
	}
	fmt.Println("run one with: soter-sim -scenario <name>")
}

func printMetrics(res *sim.Result) {
	m := res.Metrics
	fmt.Printf("\nmission:  %v flown, %.1f m, %d targets visited\n", m.Duration, m.DistanceFlown, m.TargetsVisited)
	fmt.Printf("safety:   crashed=%v collisions=%d min-clearance=%.2f m φInv-violations=%d\n",
		m.Crashed, m.Collisions, m.MinClearance, m.InvariantViolations)
	if m.Landed {
		fmt.Printf("landing:  touched down at t=%v with %.1f%% charge\n", m.LandTime, 100*m.BatteryAtEnd)
	}
	if m.DroppedFirings > 0 {
		fmt.Printf("schedule: %d firings dropped by jitter\n", m.DroppedFirings)
	}
	names := make([]string, 0, len(m.Modules))
	for name := range m.Modules {
		names = append(names, name)
	}
	slices.Sort(names)
	for _, name := range names {
		s := m.Modules[name]
		fmt.Printf("module %-22s disengagements=%-3d re-engagements=%-3d AC-control=%.1f%%\n",
			name, s.Disengagements, s.Reengagements, 100*s.ACFraction())
	}
}

func writeCSV(path string, res *sim.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.WriteString("t_s,x,y,z,vx,vy,vz,mode\n"); err != nil {
		return err
	}
	for _, p := range res.Trajectory {
		row := strconv.FormatFloat(p.T.Seconds(), 'f', 3, 64) + "," +
			coord(p.Pos.X) + "," + coord(p.Pos.Y) + "," + coord(p.Pos.Z) + "," +
			coord(p.Vel.X) + "," + coord(p.Vel.Y) + "," + coord(p.Vel.Z) + "," +
			p.Mode.String() + "\n"
		if _, err := f.WriteString(row); err != nil {
			return err
		}
	}
	return nil
}

func coord(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }
