// Command soter-sim runs the RTA-protected drone surveillance stack in the
// closed-loop simulator and reports the paper's metrics (disengagements,
// AC-control fraction, safety outcome). It can optionally dump the flown
// trajectory as CSV for plotting the Figure 12 style figures.
//
// Usage:
//
//	soter-sim [flags]
//
// Examples:
//
//	soter-sim -duration 2m -faults
//	soter-sim -protection ac-only -duration 1m
//	soter-sim -planner-bug skip-edge-check -random-targets
//	soter-sim -csv trajectory.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"time"

	"repro/internal/controller"
	"repro/internal/geom"
	"repro/internal/mission"
	"repro/internal/plan"
	"repro/internal/plant"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("soter-sim: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		seed       = flag.Int64("seed", 1, "simulation seed")
		duration   = flag.Duration("duration", 2*time.Minute, "mission duration")
		protection = flag.String("protection", "rta", "motion layer: rta | ac-only | sc-only")
		acKind     = flag.String("ac", "aggressive", "advanced controller: aggressive | learned")
		faults     = flag.Bool("faults", false, "inject periodic full-thrust faults into the AC")
		plannerBug = flag.String("planner-bug", "none", "RRT* defect: none | skip-edge-check | unchecked-shortcut | stale-obstacles")
		random     = flag.Bool("random-targets", false, "draw random surveillance targets (Section V-D style)")
		battery    = flag.Float64("battery", 1.0, "initial battery charge fraction")
		drainX     = flag.Float64("drain", 1.0, "battery drain multiplier")
		jitter     = flag.Float64("jitter", 0, "per-firing probability of a scheduling outage (SC/DM nodes)")
		delta      = flag.Duration("delta", 100*time.Millisecond, "motion-primitive DM period Δ")
		hysteresis = flag.Float64("hysteresis", 2.0, "φsafer horizon multiplier")
		csvPath    = flag.String("csv", "", "write the flown trajectory to this CSV file")
	)
	flag.Parse()

	params := plant.DefaultParams()
	params.IdleDrainPerSec *= *drainX
	params.AccelDrainPerSec *= *drainX

	cfg := mission.DefaultStackConfig(*seed)
	cfg.PlantParams = params
	cfg.MotionDelta = *delta
	cfg.Hysteresis = *hysteresis
	switch *protection {
	case "rta":
		cfg.Protection = mission.ProtectRTA
	case "ac-only":
		cfg.Protection = mission.ProtectACOnly
	case "sc-only":
		cfg.Protection = mission.ProtectSCOnly
	default:
		return fmt.Errorf("unknown -protection %q", *protection)
	}
	switch *acKind {
	case "aggressive":
		cfg.AC = mission.ACAggressive
	case "learned":
		cfg.AC = mission.ACLearned
	default:
		return fmt.Errorf("unknown -ac %q", *acKind)
	}
	switch *plannerBug {
	case "none":
	case "skip-edge-check":
		cfg.PlannerBug = plan.BugSkipEdgeCheck
	case "unchecked-shortcut":
		cfg.PlannerBug = plan.BugUncheckedShortcut
	case "stale-obstacles":
		cfg.PlannerBug = plan.BugStaleObstacles
	default:
		return fmt.Errorf("unknown -planner-bug %q", *plannerBug)
	}
	if *random {
		cfg.App = mission.AppConfig{Random: true}
	} else {
		cfg.App = mission.AppConfig{Points: []geom.Vec3{
			geom.V(3, 3, 2), geom.V(46, 3, 2.5), geom.V(46, 46, 2), geom.V(3, 46, 2.5),
		}}
	}
	if *faults {
		for i := 0; ; i++ {
			start := time.Duration(10+12*i) * time.Second
			if start >= *duration {
				break
			}
			cfg.ACFaults = append(cfg.ACFaults, controller.Fault{
				Kind:  controller.FaultFullThrust,
				Start: start,
				End:   start + 1200*time.Millisecond,
				Param: geom.V(1, 0.4, 0),
			})
		}
	}

	st, err := mission.Build(cfg)
	if err != nil {
		return fmt.Errorf("build stack: %w", err)
	}

	fmt.Printf("SOTER simulator — protection=%s ac=%s Δ=%v planner-bug=%s jitter=%.4f\n",
		*protection, *acKind, *delta, *plannerBug, *jitter)

	res, err := sim.Run(sim.RunConfig{
		Stack:            st,
		Initial:          plant.State{Pos: geom.V(3, 3, 2), Battery: *battery},
		Duration:         *duration,
		Seed:             *seed,
		JitterProb:       *jitter,
		JitterSCOnly:     true,
		CheckInvariants:  true,
		RecordTrajectory: *csvPath != "",
	})
	if err != nil {
		return fmt.Errorf("simulate: %w", err)
	}

	printMetrics(res)
	if *csvPath != "" {
		if err := writeCSV(*csvPath, res); err != nil {
			return fmt.Errorf("write csv: %w", err)
		}
		fmt.Printf("trajectory: %d samples written to %s\n", len(res.Trajectory), *csvPath)
	}
	if res.Metrics.Crashed {
		return fmt.Errorf("CRASH at t=%v pos=%v", res.Metrics.CrashTime, res.Metrics.CrashPos)
	}
	return nil
}

func printMetrics(res *sim.Result) {
	m := res.Metrics
	fmt.Printf("\nmission:  %v flown, %.1f m, %d targets visited\n", m.Duration, m.DistanceFlown, m.TargetsVisited)
	fmt.Printf("safety:   crashed=%v collisions=%d min-clearance=%.2f m φInv-violations=%d\n",
		m.Crashed, m.Collisions, m.MinClearance, m.InvariantViolations)
	if m.Landed {
		fmt.Printf("landing:  touched down at t=%v with %.1f%% charge\n", m.LandTime, 100*m.BatteryAtEnd)
	}
	if m.DroppedFirings > 0 {
		fmt.Printf("schedule: %d firings dropped by jitter\n", m.DroppedFirings)
	}
	names := make([]string, 0, len(m.Modules))
	for name := range m.Modules {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := m.Modules[name]
		fmt.Printf("module %-22s disengagements=%-3d re-engagements=%-3d AC-control=%.1f%%\n",
			name, s.Disengagements, s.Reengagements, 100*s.ACFraction())
	}
}

func writeCSV(path string, res *sim.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.WriteString("t_s,x,y,z,vx,vy,vz,mode\n"); err != nil {
		return err
	}
	for _, p := range res.Trajectory {
		row := strconv.FormatFloat(p.T.Seconds(), 'f', 3, 64) + "," +
			coord(p.Pos.X) + "," + coord(p.Pos.Y) + "," + coord(p.Pos.Z) + "," +
			coord(p.Vel.X) + "," + coord(p.Vel.Y) + "," + coord(p.Vel.Z) + "," +
			p.Mode.String() + "\n"
		if _, err := f.WriteString(row); err != nil {
			return err
		}
	}
	return nil
}

func coord(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }
