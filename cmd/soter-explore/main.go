// Command soter-explore model-checks RTA-protected scenarios with the
// bounded-asynchrony systematic-testing engine (the SOTER tool chain's
// backend, Section V): it enumerates — or randomly samples — interleavings of
// node firings and checks the Theorem 3.1 invariant φInv plus the no-crash
// property on every schedule.
//
// It is a thin front-end over the falsification layer's "schedule" strategy
// (internal/falsify): any registered scenario can be explored, and every
// violating interleaving is reported as a replayable counterexample carrying
// its choice vector.
//
// Usage:
//
//	soter-explore [-scenario surveillance-city] [-horizon 3s] [-schedules 64]
//	              [-random-seeds 32] [-faults] [-full] [-seed 1]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/falsify"
	"repro/internal/geom"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("soter-explore: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		scenarioName = flag.String("scenario", "surveillance-city", "scenario to explore")
		horizon      = flag.Duration("horizon", 3*time.Second, "per-schedule execution horizon")
		schedules    = flag.Int("schedules", 64, "max schedules to explore")
		seeds        = flag.Int("random-seeds", 0, "use random scheduling with this many seeds instead of exhaustive DFS")
		faults       = flag.Bool("faults", true, "inject an early full-thrust fault window into the AC")
		full         = flag.Bool("full", false, "keep the planner and battery RTA modules (more nodes per round: a much wider schedule tree)")
		seed         = flag.Int64("seed", 1, "campaign seed")
	)
	flag.Parse()

	// The systematic tester re-runs a fresh stack per schedule, so the horizon
	// doubles as the mission duration; the planner and battery modules are
	// dropped by default to keep the per-round branching tractable.
	strategy := "schedule"
	if *seeds > 0 {
		strategy = fmt.Sprintf("schedule:%d", *seeds)
	}
	off := true
	base := falsify.Params{Duration: *horizon}
	if !*full {
		base.NoPlannerModule, base.NoBatteryModule = &off, &off
	}
	if *faults {
		dir := geom.V(1, 0, 0)
		base.FaultFirst = 500 * time.Millisecond
		base.FaultEvery = time.Minute // one window inside a short horizon
		base.FaultLen = 1500 * time.Millisecond
		base.FaultDir = &dir
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	start := time.Now()
	res, err := falsify.Campaign(ctx, falsify.Config{
		Scenario: *scenarioName,
		Strategy: strategy,
		Seed:     *seed,
		Budget:   *schedules,
		Base:     base,
	})
	if err == context.Canceled && res != nil {
		fmt.Println("interrupted; reporting the schedules explored so far")
	} else if err != nil {
		return err
	}

	mode := "exhaustive (bounded-asynchrony DFS)"
	if *seeds > 0 {
		mode = fmt.Sprintf("random (%d seeds)", *seeds)
	}
	fmt.Printf("scenario:  %s\n", res.Scenario)
	fmt.Printf("mode:      %s\n", mode)
	fmt.Printf("schedules: %d / %d budget\n", res.Executions, res.Budget)
	fmt.Printf("wall time: %v\n", time.Since(start).Round(time.Millisecond))
	if len(res.Counterexamples) == 0 {
		fmt.Println("\nno violation of φInv or the crash property on any explored schedule.")
		return nil
	}
	fmt.Printf("\n%d violating schedule(s):\n", len(res.Counterexamples))
	for i, ce := range res.Counterexamples {
		if i >= 5 {
			fmt.Printf("  ... and %d more\n", len(res.Counterexamples)-i)
			break
		}
		fmt.Printf("  %s\n", ce)
	}
	return fmt.Errorf("%d schedule(s) violated the specification", len(res.Counterexamples))
}
