// Command soter-explore model-checks the RTA-protected surveillance stack
// with the bounded-asynchrony systematic-testing engine (the SOTER tool
// chain's backend, Section V): it enumerates — or randomly samples —
// interleavings of node firings and checks the Theorem 3.1 invariant φInv
// plus the no-crash property on every schedule.
//
// Usage:
//
//	soter-explore [-horizon 3s] [-schedules 64] [-random-seeds 32] [-faults]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/controller"
	"repro/internal/explore"
	"repro/internal/geom"
	"repro/internal/mission"
	"repro/internal/plant"
	"repro/internal/pubsub"
	"repro/internal/runtime"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("soter-explore: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		horizon   = flag.Duration("horizon", 3*time.Second, "per-schedule execution horizon")
		schedules = flag.Int("schedules", 64, "max schedules to explore")
		seeds     = flag.Int("random-seeds", 0, "use random scheduling with this many seeds instead of exhaustive DFS")
		faults    = flag.Bool("faults", true, "inject a full-thrust fault into the AC")
		seed      = flag.Int64("seed", 1, "stack seed")
	)
	flag.Parse()

	// Each schedule gets a fresh stack and plant: executions are replayed,
	// not snapshotted.
	build := func() (*explore.Instance, error) {
		cfg := mission.DefaultStackConfig(*seed)
		cfg.WithPlannerModule = false // keep the branching tractable
		cfg.WithBatteryModule = false
		cfg.App = mission.AppConfig{Points: []geom.Vec3{geom.V(20, 3, 2)}}
		if *faults {
			cfg.ACFaults = []controller.Fault{{
				Kind:  controller.FaultFullThrust,
				Start: 500 * time.Millisecond,
				End:   2 * time.Second,
				Param: geom.V(1, 0, 0),
			}}
		}
		st, err := mission.Build(cfg)
		if err != nil {
			return nil, err
		}
		drone, err := plant.NewDrone(cfg.PlantParams, *seed)
		if err != nil {
			return nil, err
		}
		ws := st.Config.Workspace
		state := plant.State{Pos: geom.V(3, 3, 2), Battery: 1}
		env := runtime.EnvironmentFunc(func(prev, now time.Duration, topics *pubsub.Store) error {
			for t := prev; t < now; t += 5 * time.Millisecond {
				dt := 5 * time.Millisecond
				if t+dt > now {
					dt = now - t
				}
				cmd := geom.Vec3{}
				if raw, err := topics.Get(mission.TopicCmd); err == nil && raw != nil {
					if v, ok := raw.(geom.Vec3); ok {
						cmd = v
					}
				}
				state = drone.Step(state, cmd, dt)
			}
			return topics.Set(mission.TopicDroneState, state)
		})
		property := func(exec *runtime.Executor) error {
			if plant.Crashed(state, ws) {
				return fmt.Errorf("crash at t=%v pos=%v", exec.Now(), state.Pos)
			}
			return nil
		}
		return &explore.Instance{
			System:    st.System,
			Env:       env,
			EnvTopics: []pubsub.Topic{{Name: mission.TopicDroneState, Default: state}},
			Property:  property,
		}, nil
	}

	cfg := explore.Config{
		Build:        build,
		Horizon:      *horizon,
		MaxSchedules: *schedules,
	}
	if *seeds > 0 {
		for i := 0; i < *seeds; i++ {
			cfg.Seeds = append(cfg.Seeds, *seed+int64(i))
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	start := time.Now()
	rep, err := explore.Run(ctx, cfg)
	if err == context.Canceled {
		fmt.Println("interrupted; reporting the schedules explored so far")
	} else if err != nil {
		return err
	}
	mode := "exhaustive (bounded-asynchrony DFS)"
	if *seeds > 0 {
		mode = fmt.Sprintf("random (%d seeds)", *seeds)
	}
	fmt.Printf("mode:          %s\n", mode)
	fmt.Printf("schedules:     %d (exhausted=%v)\n", rep.Schedules, rep.Exhausted)
	fmt.Printf("choice points: %d\n", rep.ChoicePoints)
	fmt.Printf("wall time:     %v\n", time.Since(start).Round(time.Millisecond))
	if len(rep.Violations) == 0 {
		fmt.Println("\nno violation of φInv or the crash property on any explored schedule.")
		return nil
	}
	fmt.Printf("\n%d violations:\n", len(rep.Violations))
	for i, v := range rep.Violations {
		if i >= 5 {
			fmt.Printf("  ... and %d more\n", len(rep.Violations)-i)
			break
		}
		fmt.Printf("  t=%v choices=%v seed=%d: %v\n", v.Time, v.Choices, v.Seed, v.Err)
	}
	return fmt.Errorf("%d schedule(s) violated the specification", len(rep.Violations))
}
