// Command soter-vet runs the repo's custom go/analysis suite — the
// determinism and exhaustiveness invariants that `go vet` cannot know about
// (see internal/lint). It loads the named packages (tests included, because
// the round-trip corpus lives in a test file), applies every analyzer, and
// prints positioned findings:
//
//	$ go run ./cmd/soter-vet ./...
//	internal/foo/bar.go:12:9: detsource: time.Now reads the wall clock …
//
// Exit status: 0 clean, 1 findings, 2 the tree could not be loaded.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"golang.org/x/tools/go/analysis"

	"repro/internal/lint"
	"repro/internal/lint/driver"
	"repro/internal/lint/load"
)

func main() {
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	tests := flag.Bool("tests", true, "also analyze test files (the eventkind corpus check needs them)")
	list := flag.Bool("list", false, "list the analyzers of the suite and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: soter-vet [flags] [packages]\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := lint.Suite()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-16s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		return
	}
	if *run != "" {
		wanted := map[string]bool{}
		for _, name := range strings.Split(*run, ",") {
			wanted[strings.TrimSpace(name)] = true
		}
		var selected []*analysis.Analyzer
		for _, a := range suite {
			if wanted[a.Name] {
				selected = append(selected, a)
				delete(wanted, a.Name)
			}
		}
		for name := range wanted {
			fmt.Fprintf(os.Stderr, "soter-vet: unknown analyzer %q\n", name)
			os.Exit(2)
		}
		suite = selected
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Load(load.Config{Patterns: patterns, Tests: *tests})
	if err != nil {
		fmt.Fprintf(os.Stderr, "soter-vet: %v\n", err)
		os.Exit(2)
	}
	diags, err := driver.Run(pkgs, suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "soter-vet: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "soter-vet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
