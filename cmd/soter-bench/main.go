// Command soter-bench regenerates every table and figure of the paper's
// evaluation (Section V) as text tables — the same experiments the
// bench_test.go harness runs, addressable individually. Each experiment's
// internal scenario sweeps are dispatched through the fleet engine
// (internal/fleet) bounded at -workers, so sweep-heavy experiments saturate
// the available cores while reports still print in order as they finish.
// The extra "scenarios" experiment sweeps the whole declarative workload
// registry (internal/scenario) through the fleet scenario-grid builder.
//
// Usage:
//
//	soter-bench [-seed N] [-quick] [-workers N] [-timeout D] [-json]
//	            [-cpuprofile F] [-memprofile F] [experiment ...]
//	soter-bench -certify [-certify-scenario S] [-certify-policies P,Q]
//	            [-threshold T] [-confidence C] [-max-seeds N]
//	            [-certify-batch N] [-certify-duration D]
//	            [-certify-activation P] [-certify-boost B] [-json]
//
// With no arguments every experiment runs. Experiments: fig5r fig5l fig6
// fig10 fig12a fig12b fig12b-fleet fig12c sec5c sec5d abl-delta abl-policy
// abl-return scenarios. abl-policy is the switching-policy grid opened by
// the rta.Policy redesign: every registered policy family on the faulted
// ablation mission.
//
// With -json, one JSON object per experiment is written to stdout instead of
// the text tables: {"name", "policy", "wall_ms", "crashes", "ac_fraction"} —
// the machine-readable feed for BENCH_*.json perf-trajectory tracking.
// ac_fraction is -1 for experiments with no AC/SC switching layer; policy is
// the switching policy the experiment ran ("grid" for multi-policy sweeps,
// "n/a" when there is no switching layer to run one).
//
// The second form runs statistical certification (internal/certify) instead
// of the paper experiments: sequential seed sweeps with early stopping decide
// whether each cell's crash probability is below -threshold at -confidence.
// -certify-scenario selects one cell (its registry policy, or the
// -certify-policies list); with no scenario the whole registry × policy
// matrix is certified. With -json, one certify.Result object (plus wall_ms)
// is written per cell.
//
// The whole harness is cancellation-aware: -timeout bounds the total wall
// clock and SIGINT/SIGTERM interrupt it; either way the experiments finished
// so far have already printed and the harness exits with a partial-summary
// note instead of losing the session.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"slices"
	"strings"
	"syscall"
	"time"

	"repro/internal/certify"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/rta"
	"repro/internal/scenario"
)

// outcome is one experiment's printable table plus the headline numbers the
// -json feed reports.
type outcome struct {
	text       string
	crashes    int
	acFraction float64 // -1 when the experiment has no AC/SC layer
	// policy is the switching policy the experiment ran ("" = the default
	// soter-fig9; "grid" for sweeps spanning several policies).
	policy string
}

type experiment struct {
	name string
	run  func(ctx context.Context, seed int64, quick bool, workers int) (outcome, error)
}

func catalogue() []experiment {
	return []experiment{
		{"fig5r", func(ctx context.Context, seed int64, quick bool, _ int) (outcome, error) {
			laps := 10
			if quick {
				laps = 5
			}
			res, err := experiments.Fig5Right(experiments.Fig5Config{Seed: seed, Laps: laps, Context: ctx})
			if err != nil {
				return outcome{}, err
			}
			return outcome{res.Format(), res.CollidingLaps, -1, ""}, nil
		}},
		{"fig5l", func(ctx context.Context, seed int64, quick bool, workers int) (outcome, error) {
			laps := 12
			if quick {
				laps = 6
			}
			res, err := experiments.Fig5Left(experiments.Fig5Config{Seed: seed + 4, Laps: laps, Workers: workers, Context: ctx})
			if err != nil {
				return outcome{}, err
			}
			return outcome{res.Format(), res.UnsafeLoops, -1, ""}, nil
		}},
		{"fig6", func(ctx context.Context, seed int64, _ bool, _ int) (outcome, error) {
			res, err := experiments.Fig6(experiments.Fig6Config{Seed: seed + 1, Context: ctx})
			if err != nil {
				return outcome{}, err
			}
			return outcome{res.Format(), boolCount(res.Crashed), -1, ""}, nil
		}},
		{"fig10", func(_ context.Context, seed int64, quick bool, _ int) (outcome, error) {
			samples := 4000
			if quick {
				samples = 1000
			}
			res, err := experiments.Fig10(experiments.Fig10Config{Seed: seed + 2, Samples: samples})
			if err != nil {
				return outcome{}, err
			}
			return outcome{res.Format(), 0, -1, ""}, nil
		}},
		{"fig12a", func(ctx context.Context, seed int64, quick bool, _ int) (outcome, error) {
			tours := 2
			if quick {
				tours = 1
			}
			res, err := experiments.Fig12a(experiments.Fig12aConfig{Seed: seed + 3, Tours: tours, Context: ctx})
			if err != nil {
				return outcome{}, err
			}
			out := outcome{text: res.Format(), acFraction: -1}
			for _, row := range res.Rows {
				out.crashes += row.Collisions
				if row.Mode == "rta" {
					out.acFraction = row.ACFraction
				}
			}
			return out, nil
		}},
		{"fig12b", func(ctx context.Context, seed int64, quick bool, _ int) (outcome, error) {
			d := 2 * time.Minute
			if quick {
				d = 45 * time.Second
			}
			res, err := experiments.Fig12b(experiments.Fig12bConfig{Seed: seed + 6, Duration: d, Faults: true, Context: ctx})
			if err != nil {
				return outcome{}, err
			}
			return outcome{res.Format(), boolCount(res.Crashed), res.ACFraction, ""}, nil
		}},
		{"fig12b-fleet", func(ctx context.Context, seed int64, quick bool, workers int) (outcome, error) {
			cfg := experiments.Fig12bFleetConfig{
				BaseSeed: seed + 6, Missions: 8, Duration: time.Minute,
				Faults: true, Workers: workers, Context: ctx,
			}
			if quick {
				cfg.Missions = 4
				cfg.Duration = 30 * time.Second
			}
			res, err := experiments.Fig12bFleet(cfg)
			if err != nil {
				return outcome{}, err
			}
			return outcome{res.Format(), res.Crashes, res.MeanACFraction, ""}, nil
		}},
		{"fig12c", func(ctx context.Context, seed int64, _ bool, _ int) (outcome, error) {
			res, err := experiments.Fig12c(experiments.Fig12cConfig{Seed: seed + 10, Context: ctx})
			if err != nil {
				return outcome{}, err
			}
			return outcome{res.Format(), boolCount(res.Crashed), -1, ""}, nil
		}},
		{"sec5c", func(ctx context.Context, seed int64, quick bool, _ int) (outcome, error) {
			cfg := experiments.Sec5cConfig{Seed: seed + 2, Queries: 40, ClosedLoop: time.Minute, Context: ctx}
			if quick {
				cfg.Queries = 15
				cfg.ClosedLoop = 0
			}
			res, err := experiments.Sec5c(cfg)
			if err != nil {
				return outcome{}, err
			}
			return outcome{res.Format(), boolCount(res.ClosedCrashed), res.PlannerACFrac, ""}, nil
		}},
		{"sec5d", func(ctx context.Context, seed int64, quick bool, workers int) (outcome, error) {
			cfg := experiments.Sec5dConfig{Seed: seed + 12, SimHours: 0.5, Workers: workers, Context: ctx}
			if quick {
				cfg.SimHours = 0.1
				cfg.SegmentMinutes = 3
			}
			res, err := experiments.Sec5d(cfg)
			if err != nil {
				return outcome{}, err
			}
			out := outcome{text: res.Format(), acFraction: -1}
			for _, row := range res.Rows {
				out.crashes += row.Crashes
			}
			if len(res.Rows) > 0 {
				out.acFraction = res.Rows[0].ACFraction
			}
			return out, nil
		}},
		{"abl-delta", func(ctx context.Context, seed int64, quick bool, workers int) (outcome, error) {
			cfg := experiments.AblationConfig{Seed: seed + 5, Workers: workers, Context: ctx}
			if quick {
				cfg.Duration = 40 * time.Second
			}
			res, err := experiments.AblationDelta(cfg)
			if err != nil {
				return outcome{}, err
			}
			out := outcome{text: res.Format(), acFraction: -1}
			for _, row := range res.Rows {
				out.crashes += boolCount(row.Crashed)
				// Report the paper-default grid point (Δ=100ms, hysteresis 2).
				if row.Delta == 100*time.Millisecond && row.Hysteresis == 2.0 {
					out.acFraction = row.ACFraction
				}
			}
			return out, nil
		}},
		{"abl-policy", func(ctx context.Context, seed int64, quick bool, workers int) (outcome, error) {
			cfg := experiments.AblationConfig{Seed: seed + 5, Workers: workers, Context: ctx}
			if quick {
				cfg.Duration = 40 * time.Second
			}
			res, err := experiments.AblationPolicy(cfg)
			if err != nil {
				return outcome{}, err
			}
			out := outcome{text: res.Format(), acFraction: -1, policy: "grid"}
			for _, row := range res.Rows {
				out.crashes += boolCount(row.Crashed)
				// Report the paper-default policy's AC fraction as the headline.
				if row.Policy == rta.DefaultPolicyName {
					out.acFraction = row.ACFraction
				}
			}
			return out, nil
		}},
		{"abl-return", func(ctx context.Context, seed int64, quick bool, workers int) (outcome, error) {
			cfg := experiments.AblationConfig{Seed: seed + 5, Workers: workers, Context: ctx}
			if quick {
				cfg.Duration = 40 * time.Second
			}
			res, err := experiments.AblationReturn(cfg)
			if err != nil {
				return outcome{}, err
			}
			out := outcome{text: res.Format(), acFraction: -1}
			for _, row := range res.Rows {
				out.crashes += boolCount(row.Crashed)
			}
			if len(res.Rows) > 0 {
				out.acFraction = res.Rows[0].ACFraction
			}
			return out, nil
		}},
		{"scenarios", func(ctx context.Context, seed int64, quick bool, workers int) (outcome, error) {
			cfg := fleet.GridConfig{
				Specs:    scenario.All(),
				Seeds:    fleet.Seeds(seed, 3),
				Duration: 30 * time.Second,
			}
			if quick {
				cfg.Seeds = fleet.Seeds(seed, 2)
				cfg.Duration = 10 * time.Second
			}
			rep := fleet.Run(ctx, fleet.ScenarioGrid(cfg), fleet.Options{Workers: workers})
			if err := rep.FirstErr(); err != nil {
				return outcome{}, err
			}
			out := outcome{text: formatScenarioSweep(rep), crashes: rep.Crashes, acFraction: -1}
			if s := rep.ModuleStats("safe-motion-primitive"); s.ACTime+s.SCTime > 0 {
				out.acFraction = s.ACFraction()
			}
			return out, nil
		}},
	}
}

// formatScenarioSweep appends per-mission verdict lines to the fleet summary.
func formatScenarioSweep(rep *fleet.Report) string {
	text := "Scenario registry sweep (every registered workload x seeds)\n" + rep.Format()
	for _, res := range rep.Results {
		if res.Err != nil {
			text += fmt.Sprintf("  %-44s ERROR: %v\n", res.Name, res.Err)
			continue
		}
		m := res.Metrics
		text += fmt.Sprintf("  %-44s crashed=%-5v landed=%-5v AC→SC=%-3d targets=%d\n",
			res.Name, m.Crashed, m.Landed, res.Disengagements(), m.TargetsVisited)
	}
	return text
}

func boolCount(b bool) int {
	if b {
		return 1
	}
	return 0
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("soter-bench: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	seed := flag.Int64("seed", 1, "experiment seed")
	quick := flag.Bool("quick", false, "run scaled-down configurations")
	workers := flag.Int("workers", 0, "fleet worker-pool bound (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "cancel the whole harness after this wall-clock budget (0 = none)")
	jsonOut := flag.Bool("json", false, "emit one JSON object per experiment instead of text tables")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (after the experiments finish) to this file")
	certifyMode := flag.Bool("certify", false, "run statistical certification instead of the paper experiments")
	certifyScenario := flag.String("certify-scenario", "", "certify this one scenario (empty = the whole registry × policy matrix)")
	certifyPolicies := flag.String("certify-policies", "", "comma-separated switching policies to certify under (empty = scenario default, or every registered policy in matrix mode)")
	threshold := flag.Float64("threshold", 1e-3, "crash-probability bound under test")
	confidence := flag.Float64("confidence", certify.DefaultConfidence, "two-sided confidence level of the interval")
	maxSeeds := flag.Int("max-seeds", certify.DefaultMaxSeeds, "seed budget per cell")
	certifyBatch := flag.Int("certify-batch", certify.DefaultBatch, "seeds per sequential batch (the early-stopping granularity)")
	certifyDuration := flag.Duration("certify-duration", 0, "per-run mission horizon override (0 = scenario default)")
	certifyActivation := flag.Float64("certify-activation", 0, "sporadic fault model: per-window activation probability (0 or 1 = deterministic profile)")
	certifyBoost := flag.Float64("certify-boost", 0, "importance sampling: activation boost factor (0 or 1 = plain sampling)")
	flag.Parse()

	// Profiles cover exactly the selected experiments: the CPU profile starts
	// before the first and stops after the last; the heap profile is snapped
	// once everything has finished (after a GC, so it reflects live retention
	// rather than garbage). Both feed `go tool pprof` against the perf
	// trajectory tracked in BENCH_*.json.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Printf("memprofile: %v", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Printf("memprofile: %v", err)
			}
		}()
	}

	// The run context is cancelled by SIGINT/SIGTERM and, when -timeout is
	// set, by the wall-clock budget; every experiment threads it into its
	// simulation runs and fleet sweeps.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *certifyMode {
		cell := certify.Config{
			Threshold:       *threshold,
			Confidence:      *confidence,
			MaxSeeds:        *maxSeeds,
			Batch:           *certifyBatch,
			Seed:            *seed,
			Workers:         *workers,
			Duration:        *certifyDuration,
			FaultActivation: *certifyActivation,
			Boost:           *certifyBoost,
		}
		return runCertify(ctx, *certifyScenario, *certifyPolicies, cell, *jsonOut)
	}

	cat := catalogue()
	byName := make(map[string]experiment, len(cat))
	var names []string
	for _, e := range cat {
		byName[e.name] = e
		names = append(names, e.name)
	}
	slices.Sort(names)

	selected := flag.Args()
	if len(selected) == 0 {
		for _, e := range cat {
			selected = append(selected, e.name)
		}
	}
	for _, name := range selected {
		if _, ok := byName[name]; !ok {
			return fmt.Errorf("unknown experiment %q (have: %v)", name, names)
		}
	}

	// Experiments run one at a time (reports print as they finish); the
	// parallelism lives inside each experiment, whose scenario sweeps fan
	// out through the fleet engine bounded at -workers, so total concurrency
	// never exceeds the flag.
	enc := json.NewEncoder(os.Stdout)
	start := time.Now()
	completed := 0
	for _, name := range selected {
		expStart := time.Now()
		out, err := byName[name].run(ctx, *seed, *quick, *workers)
		if err != nil {
			// Interruption is graceful: everything completed so far has
			// already printed — report the partial coverage and stop.
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				fmt.Printf("[interrupted during %s: %d/%d experiments completed in %v]\n",
					name, completed, len(selected), time.Since(start).Round(time.Millisecond))
				return nil
			}
			return fmt.Errorf("%s: %w", name, err)
		}
		completed++
		wall := time.Since(expStart)
		if *jsonOut {
			policy := out.policy
			if policy == "" {
				// Mirror the ac_fraction sentinel: an experiment with no
				// AC/SC switching layer ran no switching policy either.
				if out.acFraction < 0 {
					policy = "n/a"
				} else {
					policy = rta.DefaultPolicyName
				}
			}
			if err := enc.Encode(struct {
				Name       string  `json:"name"`
				Policy     string  `json:"policy"`
				WallMS     float64 `json:"wall_ms"`
				Crashes    int     `json:"crashes"`
				ACFraction float64 `json:"ac_fraction"`
			}{name, policy, float64(wall.Microseconds()) / 1000, out.crashes, out.acFraction}); err != nil {
				return err
			}
			continue
		}
		fmt.Printf("%s\n[%s took %v]\n\n", out.text, name, wall.Round(time.Millisecond))
	}
	if !*jsonOut {
		fmt.Printf("[%d experiments took %v total]\n", len(selected), time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// certifyRow is the -certify -json wire row: the deterministic cell result
// plus the one non-deterministic field, wall time.
type certifyRow struct {
	certify.Result
	WallMS float64 `json:"wall_ms"`
}

// runCertify runs the certification mode: one cell when a scenario is named
// (under its registry policy, or once per -certify-policies entry), the full
// scenario-registry × policy matrix otherwise. Cells print as they finish —
// an interrupted matrix keeps its completed rows.
func runCertify(ctx context.Context, scenarioName, policyList string, cell certify.Config, jsonOut bool) error {
	var policies []string
	if policyList != "" {
		for _, p := range strings.Split(policyList, ",") {
			policies = append(policies, strings.TrimSpace(p))
		}
	}
	enc := json.NewEncoder(os.Stdout)
	emit := func(res *certify.Result, wall time.Duration) error {
		if jsonOut {
			return enc.Encode(certifyRow{Result: *res, WallMS: float64(wall.Microseconds()) / 1000})
		}
		fmt.Printf("  %-44s %-10s %-22s %d/%d seeds  %d crashes  est %.3g  [%.3g, %.3g]  %v\n",
			res.Scenario, res.Policy, res.Verdict, res.Seeds, res.MaxSeeds,
			res.Crashes, res.Estimate, res.Lo, res.Hi, wall.Round(time.Millisecond))
		if res.Err != "" {
			fmt.Printf("    error: %s\n", res.Err)
		}
		return nil
	}

	// Single cell: a named scenario under its own registry policy.
	if scenarioName != "" && len(policies) <= 1 {
		if len(policies) == 1 {
			cell.Overrides.Policy = policies[0]
		}
		cell.Scenario = scenarioName
		start := time.Now()
		res, err := certify.Certify(ctx, cell)
		if res == nil {
			return err
		}
		if !jsonOut {
			fmt.Printf("Certification: crash probability < %v at %v confidence (%s mode, %s interval)\n",
				res.Threshold, res.Confidence, res.Mode, res.Method)
		}
		if emitErr := emit(res, time.Since(start)); emitErr != nil {
			return emitErr
		}
		if err != nil && !jsonOut {
			fmt.Printf("[interrupted after %d seeds]\n", res.Seeds)
		}
		return nil
	}

	// Matrix mode. Sweep the grid cell by cell (each cell parallelises
	// internally) so rows stream out as they settle.
	var scenarios []string
	if scenarioName != "" {
		scenarios = []string{scenarioName}
	}
	if !jsonOut {
		fmt.Printf("Certification matrix: crash probability < %v at %v confidence\n", cell.Threshold, cmpConfidence(cell.Confidence))
	}
	mc := certify.MatrixConfig{Scenarios: scenarios, Policies: policies, Cell: cell}
	start := time.Now()
	res, err := certify.Matrix(ctx, mc)
	if res == nil {
		return err
	}
	// Matrix wall time is sequential; apportion rows their share only in the
	// text view, where the column is cosmetic — the JSON rows carry the
	// whole-sweep average for lack of per-cell timing.
	per := time.Duration(0)
	if len(res.Cells) > 0 {
		per = time.Since(start) / time.Duration(len(res.Cells))
	}
	for i := range res.Cells {
		if emitErr := emit(&res.Cells[i], per); emitErr != nil {
			return emitErr
		}
	}
	if !jsonOut {
		fmt.Printf("[%d cells: %d certified, %d refuted, %d inconclusive, %d errored in %v]\n",
			len(res.Cells), res.Certified, res.Refuted, res.Inconclusive, res.Errored,
			time.Since(start).Round(time.Millisecond))
	}
	if err != nil && !jsonOut {
		fmt.Printf("[interrupted after %d cells]\n", len(res.Cells))
	}
	return nil
}

// cmpConfidence renders the effective confidence (zero means the default).
func cmpConfidence(c float64) float64 {
	if c == 0 {
		return certify.DefaultConfidence
	}
	return c
}
