// Command soter-bench regenerates every table and figure of the paper's
// evaluation (Section V) as text tables — the same experiments the
// bench_test.go harness runs, addressable individually. Each experiment's
// internal scenario sweeps are dispatched through the fleet engine
// (internal/fleet) bounded at -workers, so sweep-heavy experiments saturate
// the available cores while reports still print in order as they finish.
//
// Usage:
//
//	soter-bench [-seed N] [-quick] [-workers N] [experiment ...]
//
// With no arguments every experiment runs. Experiments: fig5r fig5l fig6
// fig10 fig12a fig12b fig12b-fleet fig12c sec5c sec5d abl-delta abl-return.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"repro/internal/experiments"
)

type experiment struct {
	name string
	run  func(seed int64, quick bool, workers int) (string, error)
}

func catalogue() []experiment {
	return []experiment{
		{"fig5r", func(seed int64, quick bool, _ int) (string, error) {
			laps := 10
			if quick {
				laps = 5
			}
			return experiments.Fig5Right(experiments.Fig5Config{Seed: seed, Laps: laps}).Format(), nil
		}},
		{"fig5l", func(seed int64, quick bool, workers int) (string, error) {
			laps := 12
			if quick {
				laps = 6
			}
			return experiments.Fig5Left(experiments.Fig5Config{Seed: seed + 4, Laps: laps, Workers: workers}).Format(), nil
		}},
		{"fig6", func(seed int64, _ bool, _ int) (string, error) {
			res, err := experiments.Fig6(experiments.Fig6Config{Seed: seed + 1})
			if err != nil {
				return "", err
			}
			return res.Format(), nil
		}},
		{"fig10", func(seed int64, quick bool, _ int) (string, error) {
			samples := 4000
			if quick {
				samples = 1000
			}
			res, err := experiments.Fig10(experiments.Fig10Config{Seed: seed + 2, Samples: samples})
			if err != nil {
				return "", err
			}
			return res.Format(), nil
		}},
		{"fig12a", func(seed int64, quick bool, _ int) (string, error) {
			tours := 2
			if quick {
				tours = 1
			}
			res, err := experiments.Fig12a(experiments.Fig12aConfig{Seed: seed + 3, Tours: tours})
			if err != nil {
				return "", err
			}
			return res.Format(), nil
		}},
		{"fig12b", func(seed int64, quick bool, _ int) (string, error) {
			d := 2 * time.Minute
			if quick {
				d = 45 * time.Second
			}
			res, err := experiments.Fig12b(experiments.Fig12bConfig{Seed: seed + 6, Duration: d, Faults: true})
			if err != nil {
				return "", err
			}
			return res.Format(), nil
		}},
		{"fig12b-fleet", func(seed int64, quick bool, workers int) (string, error) {
			cfg := experiments.Fig12bFleetConfig{
				BaseSeed: seed + 6, Missions: 8, Duration: time.Minute,
				Faults: true, Workers: workers,
			}
			if quick {
				cfg.Missions = 4
				cfg.Duration = 30 * time.Second
			}
			res, err := experiments.Fig12bFleet(cfg)
			if err != nil {
				return "", err
			}
			return res.Format(), nil
		}},
		{"fig12c", func(seed int64, _ bool, _ int) (string, error) {
			res, err := experiments.Fig12c(experiments.Fig12cConfig{Seed: seed + 10})
			if err != nil {
				return "", err
			}
			return res.Format(), nil
		}},
		{"sec5c", func(seed int64, quick bool, _ int) (string, error) {
			cfg := experiments.Sec5cConfig{Seed: seed + 2, Queries: 40, ClosedLoop: time.Minute}
			if quick {
				cfg.Queries = 15
				cfg.ClosedLoop = 0
			}
			res, err := experiments.Sec5c(cfg)
			if err != nil {
				return "", err
			}
			return res.Format(), nil
		}},
		{"sec5d", func(seed int64, quick bool, workers int) (string, error) {
			cfg := experiments.Sec5dConfig{Seed: seed + 12, SimHours: 0.5, Workers: workers}
			if quick {
				cfg.SimHours = 0.1
				cfg.SegmentMinutes = 3
			}
			res, err := experiments.Sec5d(cfg)
			if err != nil {
				return "", err
			}
			return res.Format(), nil
		}},
		{"abl-delta", func(seed int64, quick bool, workers int) (string, error) {
			cfg := experiments.AblationConfig{Seed: seed + 5, Workers: workers}
			if quick {
				cfg.Duration = 40 * time.Second
			}
			res, err := experiments.AblationDelta(cfg)
			if err != nil {
				return "", err
			}
			return res.Format(), nil
		}},
		{"abl-return", func(seed int64, quick bool, workers int) (string, error) {
			cfg := experiments.AblationConfig{Seed: seed + 5, Workers: workers}
			if quick {
				cfg.Duration = 40 * time.Second
			}
			res, err := experiments.AblationReturn(cfg)
			if err != nil {
				return "", err
			}
			return res.Format(), nil
		}},
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("soter-bench: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	seed := flag.Int64("seed", 1, "experiment seed")
	quick := flag.Bool("quick", false, "run scaled-down configurations")
	workers := flag.Int("workers", 0, "fleet worker-pool bound (0 = GOMAXPROCS)")
	flag.Parse()

	cat := catalogue()
	byName := make(map[string]experiment, len(cat))
	var names []string
	for _, e := range cat {
		byName[e.name] = e
		names = append(names, e.name)
	}
	sort.Strings(names)

	selected := flag.Args()
	if len(selected) == 0 {
		for _, e := range cat {
			selected = append(selected, e.name)
		}
	}
	for _, name := range selected {
		if _, ok := byName[name]; !ok {
			return fmt.Errorf("unknown experiment %q (have: %v)", name, names)
		}
	}

	// Experiments run one at a time (reports print as they finish); the
	// parallelism lives inside each experiment, whose scenario sweeps fan
	// out through the fleet engine bounded at -workers, so total concurrency
	// never exceeds the flag.
	start := time.Now()
	for _, name := range selected {
		expStart := time.Now()
		out, err := byName[name].run(*seed, *quick, *workers)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Printf("%s\n[%s took %v]\n\n", out, name, time.Since(expStart).Round(time.Millisecond))
	}
	fmt.Printf("[%d experiments took %v total]\n", len(selected), time.Since(start).Round(time.Millisecond))
	return nil
}
