// Command soter-falsify runs adversarial falsification campaigns over the
// scenario × policy × seed space (internal/falsify): it hunts configurations
// under which the RTA story breaks — crashes, φInv violations, clamp-storms —
// and emits each find as a self-contained, replayable counterexample.
//
// Usage:
//
//	soter-falsify [-scenario surveillance-city] [-strategy guided:8]
//	              [-seed 1] [-budget 64] [-duration 20s] [-json]
//	              [-corpus testdata/falsified] [-register]
//	soter-falsify -replay testdata/falsified
//
// The second form replays a counterexample corpus and verifies every
// non-retired entry still falsifies — the regression direction of the same
// tool, suitable for CI.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/falsify"
	"repro/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("soter-falsify: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		scenarioName = flag.String("scenario", "surveillance-city", "base scenario to search around")
		strategy     = flag.String("strategy", "", "search strategy spec: "+strings.Join(falsify.StrategyNames(), " | ")+" (default "+falsify.DefaultStrategyName+")")
		seed         = flag.Int64("seed", 1, "campaign seed (mutations and run seeds derive from it)")
		budget       = flag.Int("budget", falsify.DefaultBudget, "execution budget (candidate runs)")
		duration     = flag.Duration("duration", 0, "per-candidate mission horizon override (0 = scenario default)")
		policies     = flag.String("policies", "", "comma-separated policy mutation pool (default: every registered policy)")
		clampStorm   = flag.Int("clamp-storm", 0, "clamp-storm threshold (0 = default, negative disables the category)")
		maxCE        = flag.Int("max-counterexamples", 0, "bound on the ranked result list (0 = default)")
		workers      = flag.Int("workers", 0, "parallel candidate evaluations (0 = GOMAXPROCS; never changes results)")
		register     = flag.Bool("register", false, "auto-register finds as falsified/<hash> scenarios")
		corpusDir    = flag.String("corpus", "", "write found counterexamples into this corpus directory")
		note         = flag.String("note", "", "provenance note stored with corpus entries")
		replayDir    = flag.String("replay", "", "replay the corpus at this directory instead of searching")
		jsonOut      = flag.Bool("json", false, "emit the campaign result as JSON on stdout")
		trace        = flag.Bool("trace", false, "stream campaign events as JSON Lines on stderr")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *replayDir != "" {
		return replayCorpus(ctx, *replayDir, *jsonOut)
	}

	cfg := falsify.Config{
		Scenario:           *scenarioName,
		Strategy:           *strategy,
		Seed:               *seed,
		Budget:             *budget,
		Workers:            *workers,
		Duration:           *duration,
		ClampStorm:         *clampStorm,
		MaxCounterexamples: *maxCE,
		AutoRegister:       *register,
	}
	if *policies != "" {
		for _, p := range strings.Split(*policies, ",") {
			cfg.Policies = append(cfg.Policies, strings.TrimSpace(p))
		}
	}
	var sink *obs.JSONLWriter
	if *trace {
		sink = obs.NewJSONLWriter(os.Stderr)
		cfg.Observers = append(cfg.Observers, sink)
	}

	start := time.Now()
	res, err := falsify.Campaign(ctx, cfg)
	if sink != nil {
		if cerr := sink.Close(); err == nil && cerr != nil {
			err = cerr
		}
	}
	if err == context.Canceled && res != nil {
		fmt.Fprintln(os.Stderr, "interrupted; reporting the campaign so far")
	} else if err != nil {
		return err
	}

	if *corpusDir != "" && len(res.Counterexamples) > 0 {
		paths, werr := falsify.WriteCorpus(*corpusDir, res.Entries(*note, cfg.ClampStorm))
		if werr != nil {
			return werr
		}
		fmt.Fprintf(os.Stderr, "wrote %d corpus entries under %s\n", len(paths), *corpusDir)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	fmt.Printf("scenario:        %s\n", res.Scenario)
	fmt.Printf("strategy:        %s (seed %d)\n", res.Strategy, res.Seed)
	fmt.Printf("executions:      %d / %d budget (%d errored)\n", res.Executions, res.Budget, res.Errored)
	fmt.Printf("best severity:   %.1f\n", res.BestSeverity)
	fmt.Printf("wall time:       %v\n", time.Since(start).Round(time.Millisecond))
	if len(res.Counterexamples) == 0 {
		fmt.Println("\nno counterexamples found.")
		return nil
	}
	fmt.Printf("\n%d counterexamples (ranked):\n", len(res.Counterexamples))
	for _, ce := range res.Counterexamples {
		fmt.Printf("  %s\n", ce)
	}
	return nil
}

// replayCorpus re-executes every corpus entry and verifies each non-retired
// one still falsifies under its own category; a clean replay of a live entry
// is a regression-suite failure.
func replayCorpus(ctx context.Context, dir string, jsonOut bool) error {
	entries, err := falsify.LoadCorpus(dir)
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		fmt.Printf("corpus %s is empty; nothing to replay\n", dir)
		return nil
	}
	type row struct {
		Fingerprint string          `json:"fingerprint"`
		Category    string          `json:"category"`
		Retired     bool            `json:"retired,omitempty"`
		Holds       bool            `json:"holds"`
		Verdict     falsify.Verdict `json:"verdict,omitzero"`
		Error       string          `json:"error,omitempty"`
	}
	var rows []row
	failed := 0
	for _, e := range entries {
		r := row{Fingerprint: e.Fingerprint, Category: e.Category, Retired: e.Retired}
		v, skipped, rerr := e.Replay(ctx)
		switch {
		case rerr != nil:
			// Includes retirement without a reason: the corpus layer rejects
			// entries that retire without documenting why.
			r.Error = rerr.Error()
			failed++
		case skipped:
			r.Holds = true // retired entries are documentation, not assertions
		default:
			r.Verdict = v
			r.Holds = e.StillFalsifies(v)
			if !r.Holds {
				failed++
			}
		}
		rows = append(rows, r)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			return err
		}
	} else {
		for _, r := range rows {
			switch {
			case r.Retired:
				fmt.Printf("  retired %s (%s)\n", r.Fingerprint, r.Category)
			case r.Error != "":
				fmt.Printf("  ERROR   %s (%s): %s\n", r.Fingerprint, r.Category, r.Error)
			case r.Holds:
				fmt.Printf("  holds   %s (%s)\n", r.Fingerprint, r.Category)
			default:
				fmt.Printf("  CLEAN   %s (%s): no longer falsifies — fix confirmed? retire the entry\n", r.Fingerprint, r.Category)
			}
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d corpus entries did not replay as filed", failed, len(entries))
	}
	fmt.Printf("all %d corpus entries replayed as filed\n", len(entries))
	return nil
}
