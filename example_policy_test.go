package soter_test

import (
	"fmt"

	soter "repro"
)

// countdown is a custom switching policy: after a disengagement it waits a
// fixed number of DM periods and then proposes AC unconditionally. The
// proposal is safe regardless — the framework clamps any AC proposal to SC
// whenever ttf2Δ fails, so a policy can only influence *when* performance is
// restored, never whether safety holds.
type countdown struct{ wait int }

func (p countdown) Name() string            { return fmt.Sprintf("countdown:%d", p.wait) }
func (p countdown) Init() soter.PolicyState { return 0 }

func (p countdown) Decide(st soter.PolicyState, ctx *soter.DecisionContext) (soter.Mode, soter.PolicyState, soter.SwitchReason) {
	waited, _ := st.(int)
	if ctx.Current == soter.ModeAC {
		if ctx.TTF2Delta() {
			return soter.ModeSC, 0, soter.ReasonTTFTrip
		}
		return soter.ModeAC, 0, soter.ReasonNone
	}
	waited++
	if waited < p.wait {
		return soter.ModeSC, waited, soter.ReasonDwellHold
	}
	return soter.ModeAC, 0, soter.ReasonRecovery
}

// ExampleRegisterPolicy registers a custom switching policy and resolves
// specs against the registry. A registered policy is selectable everywhere a
// policy can be named: ModuleDecl{Policy: p} when declaring a module
// directly, scenario.Spec.SwitchPolicy in the workload registry, the
// "policy" override of a soter-serve job, or soter-sim -policy.
func ExampleRegisterPolicy() {
	if err := soter.RegisterPolicy("countdown", func(param int) (soter.Policy, error) {
		if param == 0 {
			param = 4 // default wait
		}
		return countdown{wait: param}, nil
	}); err != nil {
		fmt.Println(err)
		return
	}

	p, _ := soter.ParsePolicy("countdown:2")
	fmt.Println(p.Name())

	// Canonicalization makes defaults explicit, so every spelling of the
	// same behaviour shares one result-cache entry.
	canon, _ := soter.CanonicalPolicySpec("sticky-sc")
	fmt.Println(canon)

	// Output:
	// countdown:2
	// sticky-sc:10
}
