// Command quickstart is the smallest complete SOTER program: a rover on a
// 100 m line with a wall at each end. An untrusted "advanced controller"
// drives at full throttle toward the far wall; the certified safe controller
// brakes. An RTA module with a 2Δ worst-case reachability check keeps the
// rover provably inside the safe region while letting the fast controller
// run whenever it is safe — the Simplex pattern of Figure 1, programmed with
// the declarative API of Figures 4 and 7.
//
// It also shows the context-aware execution surface: the run is driven by
// Run(ctx, ...) under a deadline, and the mode switches are consumed from
// the typed event stream through an Observer instead of a bespoke hook.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	soter "repro"
)

// The rover's 1D dynamics: position x ∈ [0, 100], velocity v, acceleration
// command u with |u| ≤ maxAccel and |v| ≤ maxVel.
const (
	maxAccel = 2.0 // m/s²
	maxVel   = 5.0 // m/s
	wallLo   = 0.0
	wallHi   = 100.0
	margin   = 1.0 // keep 1 m clearance from the walls
	delta    = 100 * time.Millisecond
	ctrlTick = 20 * time.Millisecond
)

// roverState is the environment-owned plant state, published on "rover/state".
type roverState struct {
	X, V float64
}

// brakeDist is the stopping distance from speed v at full braking.
func brakeDist(v float64) float64 {
	if v < 0 {
		v = -v
	}
	return v * v / (2 * maxAccel)
}

// maxDisp is the largest forward displacement achievable in time t starting
// at signed velocity v under the bounds.
func maxDisp(v, t float64) float64 {
	v = minF(v, maxVel)
	t1 := (maxVel - v) / maxAccel
	if t <= t1 {
		return v*t + 0.5*maxAccel*t*t
	}
	return v*t1 + 0.5*maxAccel*t1*t1 + maxVel*(t-t1)
}

// stopSpan returns the interval the rover can sweep if it evolves under any
// admissible control for horizon t and then brakes — the 1D analogue of the
// StopBox used by the drone case study.
func stopSpan(x, v, t float64) (lo, hi float64) {
	vHi := minF(maxVel, v+maxAccel*t)
	vLo := maxF(-maxVel, v-maxAccel*t)
	hi = x + maxDisp(v, t) + brakeDist(maxF(vHi, 0))
	lo = x - maxDisp(-v, t) - brakeDist(maxF(-vLo, 0))
	return lo, hi
}

// safe is φsafe: the rover can still stop before either wall.
func safe(x, v float64) bool {
	return x-brakeDist(maxF(-v, 0)) >= wallLo+margin &&
		x+brakeDist(maxF(v, 0)) <= wallHi-margin
}

// ttf2Delta is the Figure 9 check: Reach(st, *, 2Δ) ⊄ φsafe.
func ttf2Delta(x, v float64) bool {
	lo, hi := stopSpan(x, v, (2 * delta).Seconds())
	return lo < wallLo+margin || hi > wallHi-margin
}

// inSafer is st ∈ φsafer, with a 2× horizon for hysteresis.
func inSafer(x, v float64) bool {
	lo, hi := stopSpan(x, v, (4 * delta).Seconds())
	return lo >= wallLo+margin && hi <= wallHi-margin
}

func stateOf(in soter.Valuation) (roverState, bool) {
	raw, ok := in["rover/state"]
	if !ok || raw == nil {
		return roverState{}, false
	}
	st, ok := raw.(roverState)
	return st, ok
}

func clampAccel(u float64) float64 {
	if u > maxAccel {
		return maxAccel
	}
	if u < -maxAccel {
		return -maxAccel
	}
	return u
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The untrusted AC: full throttle toward the far wall — fast, and
	// guaranteed to crash if left alone.
	ac, err := soter.NewNode("rover.ac", ctrlTick,
		[]soter.TopicName{"rover/state"}, []soter.TopicName{"rover/cmd"},
		func(st soter.State, _ soter.Valuation) (soter.State, soter.Valuation, error) {
			return st, soter.Valuation{"rover/cmd": maxAccel}, nil
		})
	if err != nil {
		return err
	}
	// The certified SC: brake to a stop.
	sc, err := soter.NewNode("rover.sc", ctrlTick,
		[]soter.TopicName{"rover/state"}, []soter.TopicName{"rover/cmd"},
		func(st soter.State, in soter.Valuation) (soter.State, soter.Valuation, error) {
			rs, ok := stateOf(in)
			if !ok {
				return st, soter.Valuation{"rover/cmd": 0.0}, nil
			}
			return st, soter.Valuation{"rover/cmd": clampAccel(-rs.V / ctrlTick.Seconds())}, nil
		})
	if err != nil {
		return err
	}

	// The RTA module declaration, mirroring Figure 7.
	mod, err := soter.NewRTAModule(soter.ModuleDecl{
		Name:  "SafeRover",
		AC:    ac,
		SC:    sc,
		Delta: delta,
		TTF2Delta: func(v soter.Valuation) bool {
			rs, ok := stateOf(v)
			return !ok || ttf2Delta(rs.X, rs.V)
		},
		InSafer: func(v soter.Valuation) bool {
			rs, ok := stateOf(v)
			return ok && inSafer(rs.X, rs.V)
		},
		Safe: func(v soter.Valuation) bool {
			rs, ok := stateOf(v)
			return !ok || safe(rs.X, rs.V)
		},
	})
	if err != nil {
		return err
	}

	sys, err := soter.NewSystem([]*soter.Module{mod}, nil)
	if err != nil {
		return err
	}

	// The environment integrates the rover dynamics between events and
	// publishes the state estimate.
	rover := roverState{X: 10}
	env := soter.EnvironmentFunc(func(prev, now time.Duration, topics *soter.Store) error {
		dt := (now - prev).Seconds()
		u := 0.0
		if raw, err := topics.Get("rover/cmd"); err == nil && raw != nil {
			if v, ok := raw.(float64); ok {
				u = clampAccel(v)
			}
		}
		rover.V += u * dt
		if rover.V > maxVel {
			rover.V = maxVel
		}
		if rover.V < -maxVel {
			rover.V = -maxVel
		}
		rover.X += rover.V * dt
		return topics.Set("rover/state", rover)
	})

	// Consume the typed event stream: collect the mode switches through an
	// Observer (the old WithSwitchHook is a shim over exactly this).
	var switches []soter.ModeSwitchEvent
	onEvent := soter.ObserverFunc(func(e soter.Event) {
		if sw, ok := e.(soter.ModeSwitchEvent); ok {
			switches = append(switches, sw)
		}
	})
	exec, err := soter.NewExecutor(sys,
		[]soter.Topic{{Name: "rover/state", Default: rover}},
		soter.WithInvariantChecking(),
		soter.WithEnvironment(env),
		soter.WithObservers(onEvent),
	)
	if err != nil {
		return err
	}

	// Run for 60 simulated seconds, reporting once per second. Ctrl-C
	// cancels the run between instants.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	fmt.Println("t(s)   x(m)    v(m/s)  mode")
	for s := 1; s <= 60; s++ {
		if err := exec.Run(ctx, time.Duration(s)*time.Second); err != nil {
			if ctx.Err() != nil {
				fmt.Printf("\ninterrupted at t=%v with %d mode switches so far\n", exec.Now(), len(switches))
				return nil
			}
			return fmt.Errorf("safety violated: %w", err)
		}
		mode, err := exec.Mode("SafeRover")
		if err != nil {
			return err
		}
		if s%5 == 0 {
			fmt.Printf("%4d  %6.2f  %6.2f  %v\n", s, rover.X, rover.V, mode)
		}
	}

	fmt.Printf("\n%d mode switches; rover stayed within [%.0f+%.0f, %.0f-%.0f] — φsafe held.\n",
		len(switches), wallLo, margin, wallHi, margin)
	if rover.X < wallLo+margin || rover.X > wallHi-margin {
		return fmt.Errorf("rover escaped the safe region: x=%.2f", rover.X)
	}
	fmt.Println("The full-throttle AC was used whenever safe; the SC braked near the wall.")
	return nil
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
