// Command multidrone composes two independently RTA-protected drones into
// one system — the multi-robot direction the paper sketches in Section VII —
// and links them with coordinated switching: when drone A's decision module
// disengages (loss of trust in A's advanced controller), drone B is demoted
// to its safe controller in the same instant, modelling shared distrust
// (e.g. both drones consume the same perception pipeline).
//
// Theorem 4.1 does the heavy lifting: each drone's motion module is
// well-formed on its own topic namespace, their outputs are disjoint, so the
// composition satisfies both safety invariants — which this run checks with
// the φInv monitor enabled while injecting faults into drone A.
package main

import (
	"fmt"
	"log"
	"time"

	soter "repro"
	"repro/internal/controller"
	"repro/internal/geom"
	"repro/internal/plant"
	"repro/internal/reach"
)

// droneRig bundles one drone's nodes, module and plant.
type droneRig struct {
	name     string
	module   *soter.Module
	tourNode *soter.Node
	plant    *plant.Drone
	state    plant.State
	stateT   soter.TopicName
	wpT      soter.TopicName
	cmdT     soter.TopicName
	crashed  bool
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ws := geom.CityWorkspace()
	params := plant.DefaultParams()
	limits := controller.Limits{MaxAccel: params.MaxAccel, MaxVel: params.MaxVel}
	bounds := reach.Bounds{MaxAccel: params.MaxAccel, MaxVel: params.MaxVel, BrakeDecel: 0.8 * params.MaxAccel}

	// Both drones share the obstacle map; the analysis floor is lowered a
	// hair like the surveillance stack's.
	b := ws.Bounds()
	b.Min.Z -= 0.25
	aws, err := geom.NewWorkspace(b, ws.Obstacles())
	if err != nil {
		return err
	}
	analyzer, err := reach.NewAnalyzer(aws, bounds, 0.45, 100*time.Millisecond, 2.0)
	if err != nil {
		return err
	}

	// Drone A flies the outer tour with a faulty AC; drone B patrols the
	// middle with a clean one.
	rigA, err := buildDrone("drone-a", analyzer, limits, params,
		[]geom.Vec3{geom.V(3, 3, 2), geom.V(46, 3, 2), geom.V(46, 46, 2), geom.V(3, 46, 2)},
		[]controller.Fault{
			{Kind: controller.FaultFullThrust, Start: 8 * time.Second, End: 9500 * time.Millisecond, Param: geom.V(1, 0.4, 0)},
			{Kind: controller.FaultFullThrust, Start: 25 * time.Second, End: 26500 * time.Millisecond, Param: geom.V(0.3, 1, 0)},
		})
	if err != nil {
		return err
	}
	rigB, err := buildDrone("drone-b", analyzer, limits, params,
		[]geom.Vec3{geom.V(20, 16, 3), geom.V(34, 17, 3), geom.V(36, 34, 3), geom.V(20, 33, 3)},
		nil)
	if err != nil {
		return err
	}

	sys, err := soter.NewSystem(
		[]*soter.Module{rigA.module, rigB.module},
		[]*soter.Node{rigA.tourNode, rigB.tourNode},
	)
	if err != nil {
		return err
	}
	// The Section VII link: distrust of A demotes B.
	if err := sys.AddCoordination("drone-a", "drone-b"); err != nil {
		return err
	}

	rigs := []*droneRig{rigA, rigB}
	env := soter.EnvironmentFunc(func(prev, now time.Duration, topics *soter.Store) error {
		for _, rig := range rigs {
			if err := rig.advance(ws, prev, now, topics); err != nil {
				return err
			}
		}
		return nil
	})

	var coordinated []soter.Switch
	exec, err := soter.NewExecutor(sys,
		[]soter.Topic{
			{Name: rigA.stateT, Default: rigA.state},
			{Name: rigB.stateT, Default: rigB.state},
		},
		soter.WithInvariantChecking(),
		soter.WithEnvironment(env),
		soter.WithSwitchHook(func(sw soter.Switch) {
			if sw.Coordinated {
				coordinated = append(coordinated, sw)
			}
		}),
	)
	if err != nil {
		return err
	}

	fmt.Println("two RTA-protected drones, coordinated switching drone-a → drone-b")
	if err := exec.RunUntil(60 * time.Second); err != nil {
		return fmt.Errorf("φInv violated: %w", err)
	}

	for _, rig := range rigs {
		mode, _ := exec.Mode(rig.name)
		fmt.Printf("%s: pos=%v crashed=%v final mode=%v\n", rig.name, rig.state.Pos, rig.crashed, mode)
		if rig.crashed {
			return fmt.Errorf("%s crashed — composed invariant broken", rig.name)
		}
	}
	fmt.Printf("\ncoordinated demotions of drone-b: %d\n", len(coordinated))
	for i, sw := range coordinated {
		if i >= 5 {
			fmt.Printf("  ... and %d more\n", len(coordinated)-i)
			break
		}
		fmt.Printf("  %d: t=%v %s forced %v→%v by drone-a's disengagement\n",
			i+1, sw.Time.Round(10*time.Millisecond), sw.Module, sw.From, sw.To)
	}
	if len(coordinated) == 0 {
		return fmt.Errorf("expected at least one coordinated demotion")
	}
	fmt.Println("\nφInv held for both modules (Theorem 4.1) throughout the faulted mission.")
	return nil
}

// buildDrone assembles one drone's tour node, AC/SC primitive nodes and RTA
// module on its own topic namespace.
func buildDrone(name string, analyzer *reach.Analyzer, limits controller.Limits, params plant.Params, tour []geom.Vec3, faults []controller.Fault) (*droneRig, error) {
	rig := &droneRig{
		name:   name,
		stateT: soter.TopicName(name + "/state"),
		wpT:    soter.TopicName(name + "/wp"),
		cmdT:   soter.TopicName(name + "/cmd"),
	}
	dr, err := plant.NewDrone(params, int64(len(name)))
	if err != nil {
		return nil, err
	}
	rig.plant = dr
	rig.state = plant.State{Pos: tour[len(tour)-1], Battery: 1}

	stateOf := func(v soter.Valuation) (plant.State, bool) {
		raw, ok := v[rig.stateT]
		if !ok || raw == nil {
			return plant.State{}, false
		}
		s, ok := raw.(plant.State)
		return s, ok
	}

	// The tour node publishes the current waypoint, advancing on arrival.
	tourNode, err := soter.NewNode(name+".tour", 100*time.Millisecond,
		[]soter.TopicName{rig.stateT}, []soter.TopicName{rig.wpT},
		func(st soter.State, in soter.Valuation) (soter.State, soter.Valuation, error) {
			idx, _ := st.(int)
			s, ok := stateOf(in)
			if ok && s.Pos.Dist(tour[idx%len(tour)]) < 1.0 {
				idx++
			}
			return idx, soter.Valuation{rig.wpT: tour[idx%len(tour)]}, nil
		},
		soter.WithInit(func() soter.State { return 0 }))
	if err != nil {
		return nil, err
	}
	rig.tourNode = tourNode

	mkPrimitive := func(suffix string, ctrl controller.Controller) (*soter.Node, error) {
		return soter.NewNode(name+suffix, 20*time.Millisecond,
			[]soter.TopicName{rig.stateT, rig.wpT}, []soter.TopicName{rig.cmdT},
			func(st soter.State, in soter.Valuation) (soter.State, soter.Valuation, error) {
				t, _ := st.(time.Duration)
				next := t + 20*time.Millisecond
				s, ok := stateOf(in)
				if !ok {
					return next, nil, nil
				}
				target := s.Pos
				if raw := in[rig.wpT]; raw != nil {
					if wp, ok := raw.(geom.Vec3); ok {
						target = wp
					}
				}
				return next, soter.Valuation{rig.cmdT: ctrl.Control(t, s.Pos, s.Vel, target)}, nil
			},
			soter.WithInit(func() soter.State { return time.Duration(0) }))
	}
	var ac controller.Controller = controller.NewAggressive(limits)
	if len(faults) > 0 {
		ac = controller.WithFaults(ac, limits, faults)
	}
	acNode, err := mkPrimitive(".ac", ac)
	if err != nil {
		return nil, err
	}
	scNode, err := mkPrimitive(".sc", controller.NewSafe(analyzer, limits, 20*time.Millisecond))
	if err != nil {
		return nil, err
	}

	rig.module, err = soter.NewRTAModule(soter.ModuleDecl{
		Name:  name,
		AC:    acNode,
		SC:    scNode,
		Delta: analyzer.Delta(),
		TTF2Delta: func(v soter.Valuation) bool {
			s, ok := stateOf(v)
			return !ok || analyzer.TTF2Delta(s.Pos, s.Vel)
		},
		InSafer: func(v soter.Valuation) bool {
			s, ok := stateOf(v)
			return ok && analyzer.InSafer(s.Pos, s.Vel)
		},
		Safe: func(v soter.Valuation) bool {
			s, ok := stateOf(v)
			return !ok || analyzer.Safe(s.Pos, s.Vel)
		},
	})
	if err != nil {
		return nil, err
	}
	return rig, nil
}

// advance integrates this drone's plant over [prev, now] and publishes its
// state.
func (r *droneRig) advance(ws *geom.Workspace, prev, now time.Duration, topics *soter.Store) error {
	for t := prev; t < now; {
		dt := 5 * time.Millisecond
		if t+dt > now {
			dt = now - t
		}
		cmd := geom.Vec3{}
		if raw, err := topics.Get(r.cmdT); err == nil && raw != nil {
			if v, ok := raw.(geom.Vec3); ok {
				cmd = v
			}
		}
		r.state = r.plant.Step(r.state, cmd, dt)
		t += dt
		if plant.Crashed(r.state, ws) {
			r.crashed = true
		}
	}
	return topics.Set(r.stateT, r.state)
}
