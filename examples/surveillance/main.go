// Command surveillance runs the paper's headline case study (Section II-A,
// Figure 8): an autonomous drone patrols the city workspace under the full
// RTA-protected software stack — safe motion planner (φplan), battery-safety
// module (φbat) and safe motion primitives (φmpr) — while faults are
// injected into the untrusted advanced controller. The run prints the
// mission metrics the paper's evaluation reports: disengagements,
// re-engagements, AC-control fraction and safety outcome, plus the flown
// trajectory's recovery points (the N1/N2 events of Figure 12b).
//
// The workload itself is the registered surveillance-city scenario
// (internal/scenario); this example shows the intended application shape:
// fetch a Spec by name, override what you need, Build, attach observers to
// the event stream, simulate under a cancellable context.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/rta"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() {
	seed := flag.Int64("seed", 7, "simulation seed")
	duration := flag.Duration("duration", 2*time.Minute, "mission duration")
	faults := flag.Bool("faults", true, "inject full-thrust faults into the advanced controller")
	flag.Parse()
	if err := run(*seed, *duration, *faults); err != nil {
		log.Fatal(err)
	}
}

func run(seed int64, duration time.Duration, withFaults bool) error {
	spec := scenario.MustGet("surveillance-city").With(scenario.Override{Apply: func(sp *scenario.Spec) {
		sp.Duration = duration
		if !withFaults {
			sp.Faults = scenario.FaultProfile{}
		}
	}})
	rcfg, err := spec.Build(seed)
	if err != nil {
		return fmt.Errorf("build scenario: %w", err)
	}
	rcfg.RecordTrajectory = true

	// Ctrl-C cancels the mission cleanly; the metrics accumulated so far
	// still print below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rcfg.Context = ctx
	// A bounded flight recorder rides along on the event stream.
	rec := obs.NewRecorder(0)
	rcfg.Observers = append(rcfg.Observers, rec)

	st := rcfg.Stack
	fmt.Printf("SOTER drone surveillance — %d obstacles, Δ=%v, faults=%v\n",
		st.Config.Workspace.NumObstacles(), st.Config.MotionDelta, withFaults)

	res, err := sim.Run(rcfg)
	if err != nil {
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("simulate: %w", err)
		}
		fmt.Printf("\ninterrupted — partial mission report:\n")
	}

	m := res.Metrics
	fmt.Printf("\nmission: %v flown, %.1f m, %d surveillance targets visited\n",
		m.Duration, m.DistanceFlown, m.TargetsVisited)
	fmt.Printf("safety:  crashed=%v  min clearance=%.2f m  φInv violations=%d\n",
		m.Crashed, m.MinClearance, m.InvariantViolations)
	fmt.Println("\nper-module runtime assurance:")
	for _, mod := range []string{"safe-motion-primitive", "safe-motion-planner", "battery-safety"} {
		s := m.Modules[mod]
		fmt.Printf("  %-22s disengagements=%-3d re-engagements=%-3d AC-control=%.1f%%\n",
			mod, s.Disengagements, s.Reengagements, 100*s.ACFraction())
	}

	fmt.Println("\nSC take-over events (the N1/N2 recovery points of Figure 12b):")
	n := 0
	for _, sw := range res.Switches {
		if sw.Module == "safe-motion-primitive" && sw.To == rta.ModeSC {
			n++
			fmt.Printf("  N%d at t=%-8v", n, sw.Time.Round(10*time.Millisecond))
			if n%3 == 0 {
				fmt.Println()
			}
		}
	}
	if n == 0 {
		fmt.Println("  (none — the advanced controller stayed safe throughout)")
	} else {
		fmt.Println()
	}
	fmt.Printf("\nflight recorder: %d events retained (%d evicted by the bound)\n",
		rec.Len(), rec.Dropped())
	if m.Crashed {
		return fmt.Errorf("drone crashed at t=%v pos=%v", m.CrashTime, m.CrashPos)
	}
	fmt.Println("\nφplan ∧ φmpr ∧ φbat held for the whole mission.")
	return nil
}
