// Command safeplanner reproduces the Section V-C experiment: the
// surveillance application's motion planner is the third-party RRT*
// implementation (standing in for OMPL) with injected bugs, so some
// generated motion plans collide with obstacles. Wrapped in an RTA module
// whose safe controller is the certified A* planner, the plan actually
// delivered downstream never violates φplan.
//
// The program first shows the raw planners side by side on a batch of
// random queries, then runs the full closed-loop stack with the buggy
// planner protected by the RTA module.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/geom"
	"repro/internal/mission"
	"repro/internal/plan"
	"repro/internal/plant"
	"repro/internal/sim"
)

func main() {
	seed := flag.Int64("seed", 3, "experiment seed")
	queries := flag.Int("queries", 40, "random planning queries")
	flag.Parse()
	if err := run(*seed, *queries); err != nil {
		log.Fatal(err)
	}
}

func run(seed int64, queries int) error {
	ws := geom.CityWorkspace()
	const margin = 0.45

	buggyCfg := plan.DefaultRRTStarConfig(seed)
	buggyCfg.Margin = margin
	buggyCfg.Bug = plan.BugSkipEdgeCheck
	buggyCfg.BugRate = 0.3
	buggy, err := plan.NewRRTStar(ws, buggyCfg)
	if err != nil {
		return err
	}
	astar, err := plan.NewAStar(ws, 1.0, margin)
	if err != nil {
		return err
	}

	fmt.Printf("planning %d random queries in the city workspace (bug: %v, rate %.0f%%)\n\n",
		queries, buggyCfg.Bug, 100*buggyCfg.BugRate)

	rng := rand.New(rand.NewSource(seed))
	var buggyColliding, buggyFailed, astarColliding int
	for i := 0; i < queries; i++ {
		start, ok1 := ws.RandomFreePoint(rng, margin+0.6, 256)
		goal, ok2 := ws.RandomFreePoint(rng, margin+0.6, 256)
		if !ok1 || !ok2 {
			return fmt.Errorf("could not sample free query points")
		}
		start.Z, goal.Z = clamp(start.Z, 1, 10), clamp(goal.Z, 1, 10)

		if p, err := buggy.Plan(start, goal); err != nil {
			buggyFailed++
		} else if plan.FirstUnsafeSegment(p, ws, margin) >= 0 {
			buggyColliding++
		}
		if p, err := astar.Plan(start, goal); err != nil {
			return fmt.Errorf("certified A* failed (should not happen): %w", err)
		} else if plan.FirstUnsafeSegment(p, ws, margin) >= 0 {
			astarColliding++
		}
	}
	fmt.Printf("  third-party RRT* (buggy): %d/%d colliding plans, %d failures\n",
		buggyColliding, queries, buggyFailed)
	fmt.Printf("  certified A* (safe ctrl): %d/%d colliding plans\n\n", astarColliding, queries)

	// Closed loop: the buggy planner wrapped in the RTA module.
	cfg := mission.DefaultStackConfig(seed)
	cfg.PlannerBug = plan.BugSkipEdgeCheck
	cfg.PlannerBugRate = 0.3
	cfg.App = mission.AppConfig{Random: true}
	st, err := mission.Build(cfg)
	if err != nil {
		return err
	}
	res, err := sim.Run(sim.RunConfig{
		Stack:           st,
		Initial:         plant.State{Pos: geom.V(3, 3, 2), Battery: 1},
		Duration:        2 * time.Minute,
		Seed:            seed,
		CheckInvariants: true,
	})
	if err != nil {
		return err
	}
	m := res.Metrics
	ps := m.Modules["safe-motion-planner"]
	fmt.Printf("closed loop with RTA-protected planner (%v):\n", m.Duration)
	fmt.Printf("  crashed=%v  targets=%d  dist=%.1f m\n", m.Crashed, m.TargetsVisited, m.DistanceFlown)
	fmt.Printf("  planner module: disengagements=%d re-engagements=%d AC-control=%.1f%%\n",
		ps.Disengagements, ps.Reengagements, 100*ps.ACFraction())
	if m.Crashed {
		return fmt.Errorf("crash at %v — φplan protection failed", m.CrashTime)
	}
	fmt.Println("\nφplan held: colliding RRT* plans were caught and replaced by the certified planner.")
	return nil
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
