// Command batterysafety demonstrates the battery-safety RTA module of
// Section V-B (Figure 12c): the drone patrols until the battery falls below
// the threshold bt − cost* < Tmax, at which point the battery decision
// module hands control to the certified landing planner, which aborts the
// mission and lands the drone safely — φbat (never crash from low battery)
// holds even though the mission is untrusted.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/geom"
	"repro/internal/mission"
	"repro/internal/plant"
	"repro/internal/rta"
	"repro/internal/sim"
)

func main() {
	seed := flag.Int64("seed", 11, "simulation seed")
	initialCharge := flag.Float64("battery", 0.92, "initial battery charge fraction")
	flag.Parse()
	if err := run(*seed, *initialCharge); err != nil {
		log.Fatal(err)
	}
}

func run(seed int64, charge float64) error {
	// Drain the battery fast enough that the threshold trips mid-mission.
	params := plant.DefaultParams()
	params.IdleDrainPerSec *= 30
	params.AccelDrainPerSec *= 30

	cfg := mission.DefaultStackConfig(seed)
	cfg.PlantParams = params
	cfg.App = mission.AppConfig{
		Points: []geom.Vec3{
			geom.V(3, 3, 2), geom.V(46, 3, 2), geom.V(46, 46, 2), geom.V(3, 46, 2),
		},
	}
	st, err := mission.Build(cfg)
	if err != nil {
		return fmt.Errorf("build stack: %w", err)
	}
	mon := st.Monitor
	fmt.Printf("battery-safety RTA: Δ=%v  Tmax=%.4f  cost*=%.5f  φsafer: bt > %.0f%%\n",
		mon.Delta(), mon.Tmax(), mon.CostStar(), 100*mon.SaferThreshold())
	fmt.Printf("switch condition trips at bt < Tmax + cost* = %.4f\n\n", mon.Tmax()+mon.CostStar())

	res, err := sim.Run(sim.RunConfig{
		Stack:           st,
		Initial:         plant.State{Pos: geom.V(3, 3, 2), Battery: charge},
		Duration:        10 * time.Minute,
		Seed:            seed,
		CheckInvariants: true,
	})
	if err != nil {
		return fmt.Errorf("simulate: %w", err)
	}

	m := res.Metrics
	for _, sw := range res.Switches {
		if sw.Module == "battery-safety" && sw.To == rta.ModeSC {
			fmt.Printf("t=%-8v battery DM detected low charge → certified lander engaged\n",
				sw.Time.Round(10*time.Millisecond))
		}
	}
	fmt.Printf("\noutcome: landed=%v at t=%v  crashed=%v  battery at end=%.1f%%\n",
		m.Landed, m.LandTime.Round(10*time.Millisecond), m.Crashed, 100*m.BatteryAtEnd)
	fmt.Printf("mission: %.1f m flown, %d targets visited before the abort\n",
		m.DistanceFlown, m.TargetsVisited)

	if m.Crashed {
		return fmt.Errorf("drone crashed at t=%v — φbat violated", m.CrashTime)
	}
	if !m.Landed {
		return fmt.Errorf("drone neither landed nor crashed within the horizon")
	}
	if m.BatteryAtEnd <= 0 {
		return fmt.Errorf("battery hit zero before touchdown — φbat violated")
	}
	fmt.Println("\nφbat held: the drone prioritised landing safely over the mission.")
	return nil
}
